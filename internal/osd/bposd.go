package osd

import (
	"vegapunk/internal/bp"
	"vegapunk/internal/gf2"
	"vegapunk/internal/obs"
)

// BPOSD chains belief propagation with OSD post-processing: the paper's
// accuracy baseline BP+OSD-CS(t). BP output is returned directly when it
// converges; otherwise its posteriors seed the OSD reliability order.
type BPOSD struct {
	bp  *bp.Decoder
	osd *Decoder
	// skipFallback returns the BP hard decision even on
	// non-convergence (degraded serving tiers drop the expensive OSD
	// stage to stay inside the deadline budget).
	skipFallback bool
}

// NewBPOSD builds the combined decoder. h is consumed in both sparse
// (BP) and dense (OSD) forms; priorLLR supplies both the BP priors and
// the OSD objective.
func NewBPOSD(h *gf2.SparseCols, priorLLR []float64, bpCfg bp.Config, osdCfg Config) *BPOSD {
	return &BPOSD{
		bp:  bp.New(h, priorLLR, bpCfg),
		osd: New(h.ToDense(), priorLLR, osdCfg),
	}
}

// Result reports a BP+OSD decode.
type Result struct {
	// Error is owned by the decoder and valid until the next Decode call.
	Error gf2.Vec
	// BPConverged indicates OSD was skipped.
	BPConverged bool
	// BPIters is the iteration count of the BP stage (for latency models).
	BPIters int
}

// Probe exposes the BP stage's recording handle (obs.Probed); fallback
// spans share it, so one activation traces the whole chain.
func (d *BPOSD) Probe() *obs.Probe { return d.bp.Probe() }

// SetBPMaxIters retunes the BP stage's iteration cap at runtime.
//
//vegapunk:hotpath
func (d *BPOSD) SetBPMaxIters(n int) { d.bp.SetMaxIters(n) }

// BPMaxIters reports the BP stage's current iteration cap.
func (d *BPOSD) BPMaxIters() int { return d.bp.MaxIters() }

// SetFallback toggles the OSD post-processing stage. With fallback off
// a non-converged BP decode returns the BP hard decision as-is (the
// degraded-tier trade: bounded latency over accuracy).
//
//vegapunk:hotpath
func (d *BPOSD) SetFallback(on bool) { d.skipFallback = !on }

// Decode runs BP and, on non-convergence, OSD.
func (d *BPOSD) Decode(syndrome gf2.Vec) Result {
	r := d.bp.Decode(syndrome)
	if r.Converged {
		return Result{Error: r.Error, BPConverged: true, BPIters: r.Iters}
	}
	if d.skipFallback {
		return Result{Error: r.Error, BPIters: r.Iters}
	}
	p := d.bp.Probe()
	t := p.Tick()
	e := d.osd.Decode(syndrome, r.Posterior)
	p.SpanSince(obs.StageFallback, 0, t)
	return Result{
		Error:   e,
		BPIters: r.Iters,
	}
}
