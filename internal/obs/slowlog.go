package obs

import (
	"io"
	"strconv"
	"sync"
	"sync/atomic"
)

// The structured slow-request log: decodes whose end-to-end service
// latency crosses a threshold are reported as one JSON object per line,
// with the per-stage breakdown that end-to-end wall time hides. The hot
// path hands a fixed-size event struct to a bounded channel and never
// blocks (events drop, counted, when the logger falls behind); a single
// goroutine does the encoding and writing.

// SlowEvent is one slow decode. All fields are scalars or references to
// long-lived strings, so passing it by value allocates nothing.
type SlowEvent struct {
	// Seq numbers emitted events (assigned by Offer).
	Seq uint64
	// ID is the decode's request id (the tracer id lattice).
	ID uint64
	// Model and Decoder identify the serving registration.
	Model, Decoder string
	// SyndromeWeight is the request syndrome's Hamming weight.
	SyndromeWeight int
	// Per-stage breakdown plus the end-to-end total, in nanoseconds.
	QueueWaitNs, DecodeNs, CopyOutNs, TotalNs int64
	// BPIters / HierLevels mirror the decoder's Stats.
	BPIters, HierLevels int
	// Satisfied reports whether the correction reproduced the syndrome.
	Satisfied bool
}

// AppendJSON appends the event as a single JSON object (no trailing
// newline) and returns the extended buffer. Hand-rolled so the encoder
// is fuzzable and dependency-free; strings are escaped per RFC 8259.
func (e *SlowEvent) AppendJSON(dst []byte) []byte {
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendUint(dst, e.Seq, 10)
	dst = append(dst, `,"id":`...)
	dst = strconv.AppendUint(dst, e.ID, 10)
	dst = append(dst, `,"model":`...)
	dst = appendJSONString(dst, e.Model)
	dst = append(dst, `,"decoder":`...)
	dst = appendJSONString(dst, e.Decoder)
	dst = append(dst, `,"syndrome_weight":`...)
	dst = strconv.AppendInt(dst, int64(e.SyndromeWeight), 10)
	dst = append(dst, `,"queue_wait_ns":`...)
	dst = strconv.AppendInt(dst, e.QueueWaitNs, 10)
	dst = append(dst, `,"decode_ns":`...)
	dst = strconv.AppendInt(dst, e.DecodeNs, 10)
	dst = append(dst, `,"copy_out_ns":`...)
	dst = strconv.AppendInt(dst, e.CopyOutNs, 10)
	dst = append(dst, `,"total_ns":`...)
	dst = strconv.AppendInt(dst, e.TotalNs, 10)
	dst = append(dst, `,"bp_iters":`...)
	dst = strconv.AppendInt(dst, int64(e.BPIters), 10)
	dst = append(dst, `,"hier_levels":`...)
	dst = strconv.AppendInt(dst, int64(e.HierLevels), 10)
	dst = append(dst, `,"satisfied":`...)
	dst = strconv.AppendBool(dst, e.Satisfied)
	return append(dst, '}')
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a quoted, escaped JSON string. Control
// characters, quotes and backslashes are escaped; invalid UTF-8 bytes
// are passed through byte-wise exactly as encoding/json does for raw
// bytes below 0x80 and escaped as � is NOT attempted — model keys
// are ASCII slugs, but the encoder must stay safe for arbitrary input.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			dst = append(dst, '\\', c)
		case c == '\n':
			dst = append(dst, '\\', 'n')
		case c == '\r':
			dst = append(dst, '\\', 'r')
		case c == '\t':
			dst = append(dst, '\\', 't')
		case c < 0x20 || c == 0x7f:
			dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}

// SlowLog is the non-blocking slow-decode reporter. Offer is safe for
// concurrent use and allocation-free; a single goroutine drains the
// channel, encodes and writes.
type SlowLog struct {
	ch      chan SlowEvent
	seq     atomic.Uint64
	dropped atomic.Uint64

	done chan struct{}
	once sync.Once
}

// NewSlowLog starts a slow log writing JSON lines to w. buffer bounds
// the in-flight event queue (default 256). Close flushes and stops the
// writer goroutine.
func NewSlowLog(w io.Writer, buffer int) *SlowLog {
	if buffer <= 0 {
		buffer = 256
	}
	l := &SlowLog{
		ch:   make(chan SlowEvent, buffer),
		done: make(chan struct{}),
	}
	go func() {
		defer close(l.done)
		buf := make([]byte, 0, 512)
		for ev := range l.ch {
			buf = ev.AppendJSON(buf[:0])
			buf = append(buf, '\n')
			w.Write(buf) //nolint:errcheck // diagnostics are best-effort
		}
	}()
	return l
}

// Offer enqueues an event without blocking; when the writer is behind
// and the buffer is full the event is dropped and counted. Assigns
// ev.Seq. Allocation-free.
//
//vegapunk:hotpath
func (l *SlowLog) Offer(ev SlowEvent) {
	ev.Seq = l.seq.Add(1)
	select {
	case l.ch <- ev:
	default:
		l.dropped.Add(1)
	}
}

// Dropped counts events lost to a full buffer.
func (l *SlowLog) Dropped() uint64 { return l.dropped.Load() }

// Close stops accepting events and waits for the writer to flush.
func (l *SlowLog) Close() {
	l.once.Do(func() { close(l.ch) })
	<-l.done
}
