package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	for _, v := range []float64{0.5, 1, 2, 3, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d, want 6", h.Count())
	}
	if h.Sum() != 111.5 {
		t.Errorf("Sum = %g, want 111.5", h.Sum())
	}
	if q := h.Quantile(0.5); q != 2 {
		t.Errorf("p50 = %g, want 2 (bucket upper bound)", q)
	}
	if q := h.Quantile(1.0); q != 8 {
		t.Errorf("p100 = %g, want the largest finite bound 8", q)
	}
}

func TestHistogramObserveDoesNotAllocate(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(3) })
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f times per call, want 0", allocs)
	}
}

func TestDecodeMetricsRecordGating(t *testing.T) {
	m := NewDecodeMetrics()
	// A BP-only decode: no hier/BPGD/LSD stages ran.
	m.Record(12, true, false, 0, 0, 0, 3)
	// A Vegapunk decode with fallback.
	m.Record(30, false, true, 2, 0, 5, 0)
	if m.Decodes.Load() != 2 || m.BPConverged.Load() != 1 || m.Fallback.Load() != 1 {
		t.Errorf("counters: decodes=%d converged=%d fallback=%d",
			m.Decodes.Load(), m.BPConverged.Load(), m.Fallback.Load())
	}
	if m.BPIters.Count() != 2 {
		t.Errorf("BPIters observed %d, want 2", m.BPIters.Count())
	}
	if m.HierLevels.Count() != 1 || m.BPGDRounds.Count() != 0 || m.LSDClusterChecks.Count() != 1 {
		t.Errorf("stage histograms must observe only when the stage ran: hier=%d bpgd=%d lsd=%d",
			m.HierLevels.Count(), m.BPGDRounds.Count(), m.LSDClusterChecks.Count())
	}
	// Weight-0 syndromes are real decodes and must be observed.
	if m.SyndromeWeight.Count() != 2 {
		t.Errorf("SyndromeWeight observed %d, want 2", m.SyndromeWeight.Count())
	}
}

func TestDecodeMetricsRecordDoesNotAllocate(t *testing.T) {
	m := NewDecodeMetrics()
	allocs := testing.AllocsPerRun(1000, func() {
		m.Record(12, true, false, 2, 1, 5, 3)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f times per call, want 0", allocs)
	}
}

func TestWriteDecodeFamiliesLintsClean(t *testing.T) {
	m := NewDecodeMetrics()
	m.Record(12, true, false, 2, 0, 0, 3)
	var buf bytes.Buffer
	WriteDecodeFamilies(&buf, []LabelledDecodeMetrics{{Labels: `model="test"`, M: m}})
	out := buf.String()
	for _, want := range []string{
		"# HELP vegapunk_decode_total",
		"# TYPE vegapunk_decode_total counter",
		`vegapunk_decode_bp_iterations_bucket{model="test",le="16"} 1`,
		`vegapunk_decode_bp_iterations_count{model="test"} 1`,
		"# TYPE vegapunk_decode_syndrome_weight histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if problems := LintExposition(strings.NewReader(out)); len(problems) > 0 {
		t.Errorf("lint violations: %v", problems)
	}
}

func TestLintExpositionCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"missing help",
			"# TYPE x_total counter\nx_total 1\n",
			"without # HELP"},
		{"missing type",
			"# HELP x_total help text\nx_total 1\n",
			"without # TYPE"},
		{"counter without _total",
			"# HELP x help\n# TYPE x counter\nx 1\n",
			"counter must end in _total"},
		{"gauge with _total",
			"# HELP x_total help\n# TYPE x_total gauge\nx_total 1\n",
			"must not end in _total"},
		{"reserved suffix",
			"# HELP x_sum help\n# TYPE x_sum gauge\nx_sum 1\n",
			"reserved suffix"},
		{"duration without seconds",
			"# HELP x_latency help\n# TYPE x_latency gauge\nx_latency 1\n",
			"must end in _seconds"},
		{"bad character",
			"# HELP x-y help\n# TYPE x-y gauge\nx-y 1\n",
			"invalid metric name character"},
	}
	for _, tc := range cases {
		problems := LintExposition(strings.NewReader(tc.in))
		found := false
		for _, p := range problems {
			if strings.Contains(p, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: lint missed the violation (got %v)", tc.name, problems)
		}
	}
	clean := "# HELP ok_wait_seconds help\n# TYPE ok_wait_seconds histogram\n" +
		"ok_wait_seconds_bucket{le=\"+Inf\"} 1\nok_wait_seconds_sum 0.5\nok_wait_seconds_count 1\n"
	if problems := LintExposition(strings.NewReader(clean)); len(problems) > 0 {
		t.Errorf("false positives on clean exposition: %v", problems)
	}
}
