package obs

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Prometheus text exposition rendering. Each metric family is rendered
// once (# HELP / # TYPE header followed by one sample set per label
// set). The rendering path is cold and free to allocate.

// WriteHeader emits the HELP/TYPE preamble for one family.
func WriteHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// WriteCounterSample emits one counter sample (no header). labels is a
// pre-rendered `k="v",…` string or empty.
func WriteCounterSample(w io.Writer, name, labels string, v uint64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %d\n", name, v)
		return
	}
	fmt.Fprintf(w, "%s{%s} %d\n", name, labels, v)
}

// WriteGaugeSample emits one gauge sample (no header).
func WriteGaugeSample(w io.Writer, name, labels string, v int64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %d\n", name, v)
		return
	}
	fmt.Fprintf(w, "%s{%s} %d\n", name, labels, v)
}

// WriteFloatGauge emits one float-valued gauge sample (no header):
// SLO burn rates, clock offsets, token-bucket levels.
func WriteFloatGauge(w io.Writer, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %g\n", name, v)
		return
	}
	fmt.Fprintf(w, "%s{%s} %g\n", name, labels, v)
}

// WriteProm renders the histogram's cumulative buckets, _sum and
// _count under the given family name and label set (no header).
func (h *Histogram) WriteProm(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, b, cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, h.sum.Load())
		fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
		return
	}
	fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, h.sum.Load())
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.count.Load())
}

// LabelledDecodeMetrics pairs one DecodeMetrics instance with its
// pre-rendered label set (e.g. `model="bb-72-12-6/bp/p0.001"`).
type LabelledDecodeMetrics struct {
	Labels string
	M      *DecodeMetrics
}

// decodeFamilies is the export schema of DecodeMetrics; the renderer
// walks it so the server (many labelled instances) and the experiment
// harness (one) emit identical family sets.
var decodeFamilies = []struct {
	name, help, typ string
	counter         func(*DecodeMetrics) *Counter
	hist            func(*DecodeMetrics) *Histogram
}{
	{name: "vegapunk_decode_total", help: "Decode calls observed by the decoder telemetry.", typ: "counter",
		counter: func(m *DecodeMetrics) *Counter { return &m.Decodes }},
	{name: "vegapunk_decode_bp_converged_total", help: "Decodes where plain BP reproduced the syndrome.", typ: "counter",
		counter: func(m *DecodeMetrics) *Counter { return &m.BPConverged }},
	{name: "vegapunk_decode_fallback_total", help: "Decodes that engaged OSD/LSD fallback post-processing.", typ: "counter",
		counter: func(m *DecodeMetrics) *Counter { return &m.Fallback }},
	{name: "vegapunk_decode_bp_iterations", help: "BP message-passing iterations per decode.", typ: "histogram",
		hist: func(m *DecodeMetrics) *Histogram { return m.BPIters }},
	{name: "vegapunk_decode_hier_levels", help: "Hierarchical outer levels per Vegapunk decode.", typ: "histogram",
		hist: func(m *DecodeMetrics) *Histogram { return m.HierLevels }},
	{name: "vegapunk_decode_bpgd_rounds", help: "Guided-decimation rounds per BPGD decode.", typ: "histogram",
		hist: func(m *DecodeMetrics) *Histogram { return m.BPGDRounds }},
	{name: "vegapunk_decode_lsd_cluster_checks", help: "Largest LSD cluster check count per fallback decode.", typ: "histogram",
		hist: func(m *DecodeMetrics) *Histogram { return m.LSDClusterChecks }},
	{name: "vegapunk_decode_syndrome_weight", help: "Hamming weight of decoded syndromes.", typ: "histogram",
		hist: func(m *DecodeMetrics) *Histogram { return m.SyndromeWeight }},
}

// WriteDecodeFamilies renders every DecodeMetrics family across the
// given labelled instances, HELP/TYPE once per family.
func WriteDecodeFamilies(w io.Writer, insts []LabelledDecodeMetrics) {
	for _, f := range decodeFamilies {
		WriteHeader(w, f.name, f.help, f.typ)
		for _, in := range insts {
			if f.counter != nil {
				WriteCounterSample(w, f.name, in.Labels, f.counter(in.M).Load())
			} else {
				f.hist(in.M).WriteProm(w, f.name, in.Labels)
			}
		}
	}
}

// LintExposition audits a Prometheus text exposition for the repo's
// naming conventions and returns one message per violation:
//
//   - every sample's family must have # HELP and # TYPE lines;
//   - counter families must end in _total, non-counters must not;
//   - family names must not end in the reserved _bucket/_sum/_count
//     suffixes (histogram internals are derived, never declared);
//   - names must match [a-zA-Z_:][a-zA-Z0-9_:]*;
//   - a family whose name mentions a duration must carry the _seconds
//     unit suffix (before _total for counters).
func LintExposition(r io.Reader) []string {
	var problems []string
	typeOf := map[string]string{}
	helped := map[string]bool{}
	sampled := map[string]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "# HELP "):
			fields := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(fields) < 2 || fields[1] == "" {
				problems = append(problems, fmt.Sprintf("HELP without text: %q", line))
			}
			if len(fields) > 0 {
				helped[fields[0]] = true
			}
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				problems = append(problems, fmt.Sprintf("malformed TYPE line: %q", line))
				continue
			}
			typeOf[fields[0]] = fields[1]
		case line == "" || strings.HasPrefix(line, "#"):
		default:
			name := line
			if i := strings.IndexAny(name, "{ "); i >= 0 {
				name = name[:i]
			}
			sampled[name] = true
		}
	}
	// Resolve derived histogram/summary samples (_bucket/_sum/_count) to
	// their declaring family — but only when that family was TYPEd as
	// one; a standalone gauge named x_sum is a violation, not a
	// histogram internal.
	families := map[string]bool{}
	for name := range sampled {
		fam := name
		if _, declared := typeOf[name]; !declared {
			if base := familyOf(name); base != name {
				if t := typeOf[base]; t == "histogram" || t == "summary" {
					fam = base
				}
			}
		}
		families[fam] = true
	}
	for fam := range families {
		typ, ok := typeOf[fam]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: sample without # TYPE", fam))
			continue
		}
		if !helped[fam] {
			problems = append(problems, fmt.Sprintf("%s: sample without # HELP", fam))
		}
		problems = append(problems, lintName(fam, typ)...)
	}
	return problems
}

// familyOf strips the derived histogram/summary sample suffixes so
// name_bucket/_sum/_count resolve to their declaring family when that
// family was TYPEd.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// lintName applies the per-family naming rules.
func lintName(name, typ string) []string {
	var problems []string
	for i, r := range name {
		ok := r == '_' || r == ':' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
			i > 0 && r >= '0' && r <= '9'
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: invalid metric name character %q", name, r))
			break
		}
	}
	base := name
	if typ == "counter" {
		if !strings.HasSuffix(name, "_total") {
			problems = append(problems, fmt.Sprintf("%s: counter must end in _total", name))
		}
		base = strings.TrimSuffix(name, "_total")
	} else if strings.HasSuffix(name, "_total") {
		problems = append(problems, fmt.Sprintf("%s: %s must not end in _total", name, typ))
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(base, suf) {
			problems = append(problems, fmt.Sprintf("%s: family name ends in reserved suffix %s", name, suf))
		}
	}
	for _, unit := range []string{"latency", "duration", "wait", "time"} {
		if strings.Contains(base, unit) && !strings.HasSuffix(base, "_seconds") {
			problems = append(problems, fmt.Sprintf("%s: duration-like metric must end in _seconds", name))
			break
		}
	}
	return problems
}
