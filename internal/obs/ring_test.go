package obs

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRingRecordAndSnapshot(t *testing.T) {
	r := NewRing(16)
	r.Record(StageBPIter, 3, 7, 100, 200)
	r.Record(StageFallback, -5, 8, 200, 350)
	spans := r.Snapshot(nil)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if s := spans[0]; s.Stage != StageBPIter || s.Arg != 3 || s.ID != 7 || s.Start != 100 || s.End != 200 {
		t.Errorf("span 0 = %+v", s)
	}
	// Negative args survive the 24-bit meta packing via sign extension.
	if s := spans[1]; s.Stage != StageFallback || s.Arg != -5 || s.ID != 8 {
		t.Errorf("span 1 = %+v (want Arg=-5)", s)
	}
}

// TestRingDropOldest fills the ring far past capacity: Record must keep
// accepting (drop-oldest, never block) and Snapshot must return exactly
// the newest Cap() spans in order.
func TestRingDropOldest(t *testing.T) {
	r := NewRing(16)
	n := 5 * r.Cap()
	for i := 0; i < n; i++ {
		r.Record(StageDecode, 0, uint32(i), int64(i), int64(i)+1)
	}
	spans := r.Snapshot(nil)
	if len(spans) != r.Cap() {
		t.Fatalf("got %d spans, want %d", len(spans), r.Cap())
	}
	for j, s := range spans {
		want := uint32(n - r.Cap() + j)
		if s.ID != want {
			t.Fatalf("span %d has id %d, want %d (oldest must be dropped)", j, s.ID, want)
		}
	}
}

func TestRingRecordDoesNotAllocate(t *testing.T) {
	r := NewRing(16)
	// Saturate first so every Record overwrites (the worst case).
	for i := 0; i < 2*r.Cap(); i++ {
		r.Record(StageBPIter, 1, uint32(i), int64(i), int64(i)+1)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(StageBPIter, 1, 9, 10, 20)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f times per call, want 0", allocs)
	}
}

// TestTracerConcurrentRecordDrain hammers one writer against concurrent
// drainers under -race: every drained span must be internally
// consistent (End = Start+1 by construction), proving the seqlock
// protocol never returns torn reads.
func TestTracerConcurrentRecordDrain(t *testing.T) {
	tr := NewTracer(TracerConfig{RingSpans: 64})
	ring := tr.Ring()
	var stop atomic.Bool
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := int64(0); !stop.Load(); i++ {
			ring.Record(StageDecode, int32(i%100), uint32(i), i, i+1)
		}
	}()
	var drainers sync.WaitGroup
	for d := 0; d < 4; d++ {
		drainers.Add(1)
		go func() {
			defer drainers.Done()
			for k := 0; k < 200; k++ {
				for _, s := range tr.Spans() {
					if s.End != s.Start+1 {
						t.Errorf("torn span: %+v", s)
						return
					}
					if s.ID != uint32(s.Start) {
						t.Errorf("mismatched span fields: %+v", s)
						return
					}
				}
			}
		}()
	}
	drainers.Wait()
	stop.Store(true)
	<-writerDone
}

func TestShouldSample(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 4})
	hits := 0
	for i := 0; i < 100; i++ {
		if tr.ShouldSample(tr.NextID()) {
			hits++
		}
	}
	if hits != 25 {
		t.Errorf("sampled %d of 100 at 1-in-4, want 25", hits)
	}
	tr.SetEnabled(false)
	if tr.ShouldSample(4) {
		t.Error("disabled tracer must sample nothing")
	}
}

type probedDecoder struct{ p *Probe }

func (d *probedDecoder) Probe() *Probe { return d.p }

func TestProbeOf(t *testing.T) {
	d := &probedDecoder{p: NewProbe()}
	if ProbeOf(d) != d.p {
		t.Error("ProbeOf must return the decoder's own probe")
	}
	p := ProbeOf(struct{}{})
	if p == nil {
		t.Fatal("ProbeOf must never return nil")
	}
	// The shared disabled probe ignores Activate (it is shared across
	// goroutines, so arming it would race).
	p.Activate(NewRing(16), 1)
	if p.Active() {
		t.Error("disabled probe must stay inactive")
	}
	if p.Tick() != 0 {
		t.Error("inactive probe must not read the clock")
	}
	if p.SpanSince(StageDecode, 0, 0) != 0 {
		t.Error("inactive probe must not record")
	}
}

func TestProbeRecordsWhenActive(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	ring := tr.Ring()
	p := NewProbe()
	p.Activate(ring, 42)
	start := p.Tick()
	if start == 0 {
		t.Fatal("active probe must read the clock")
	}
	if now := p.SpanSince(StageBPIter, 3, start); now < start {
		t.Fatalf("SpanSince returned %d < start %d", now, start)
	}
	p.Deactivate()
	spans := ring.Snapshot(nil)
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	if s := spans[0]; s.Stage != StageBPIter || s.Arg != 3 || s.ID != 42 {
		t.Errorf("span = %+v", s)
	}
}
