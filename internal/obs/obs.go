// Package obs is the repo's observability layer: allocation-free decode
// tracing, per-stage latency metrics, and export plumbing (Prometheus
// text, Chrome trace_event JSON, pprof, structured slow-request logs).
//
// The package is stdlib-only and splits cleanly into a hot half and a
// cold half:
//
//   - Recording (the hot half) — Ring.Record, Probe.SpanSince,
//     Counter/Gauge/Histogram observation, DecodeMetrics.Record and
//     SlowLog.Offer — allocates nothing and takes no locks. Span slots
//     are preallocated atomics, histograms are atomic buckets, and slow
//     events travel by value through a bounded channel. Every recording
//     entry point is `//vegapunk:hotpath`-annotated so vegacheck
//     enforces the contract.
//   - Rendering (the cold half) — WriteTrace, the Prometheus writers,
//     the slow-log JSON encoder goroutine, the debug HTTP mux — runs
//     off the decode path and is free to allocate.
//
// Timing uses a single package clock (Tick, nanoseconds since process
// start, monotonic). The only time.Now reads live inside this package
// behind explicit //vegapunk:allow(time) escapes: decoder hot loops call
// Probe.Tick/Probe.SpanSince, which read the clock only while a sampled
// decode has the probe activated, so an untraced decode pays one
// predictable branch per span edge and nothing else.
package obs

import "time"

// epoch anchors the package clock; Span timestamps are nanoseconds
// since epoch, comparable across goroutines via Go's monotonic clock.
var epoch = time.Now()

// Tick returns the current reading of the package clock in nanoseconds
// since process start. It is the one sanctioned wall-clock read on the
// decode path: metrics and span edges at decode boundaries go through
// here rather than calling time.Now directly.
//
//vegapunk:hotpath
func Tick() int64 {
	return int64(time.Since(epoch)) //vegapunk:allow(time) the package clock is the single sanctioned monotonic read
}

// DurSeconds converts a Tick difference to seconds (for the
// _seconds-suffixed histograms).
//
//vegapunk:hotpath
func DurSeconds(ns int64) float64 { return float64(ns) / 1e9 }

// TickAt converts an absolute wall-clock instant (e.g. a context
// deadline) into the package clock's tick space without reading the
// clock: the subtraction against the process epoch uses the monotonic
// reading already carried by t when it came from the time package.
// Serve's deadline-budget accounting compares these against Tick.
//
//vegapunk:hotpath
func TickAt(t time.Time) int64 { return int64(t.Sub(epoch)) }

// Stage identifies one traced pipeline stage. The values cover the
// decoder pipeline (BP rounds, hierarchical levels, fallback
// post-processing) and the serving pipeline (queue wait, batch
// assembly, dispatch, decode, copy-out).
type Stage uint8

// Traced pipeline stages.
const (
	// StageBPIter is one BP message-passing iteration.
	StageBPIter Stage = iota
	// StageHierBase is Vegapunk's baseline pass (every block solved
	// once against the untouched syndrome).
	StageHierBase
	// StageHierLevel is one outer hierarchical level: a full candidate
	// sweep plus the winner's staged block re-solves.
	StageHierLevel
	// StageFallback is OSD/LSD post-processing after BP non-convergence.
	StageFallback
	// StageBPGDRound is one guided-decimation round (inner BP + freeze).
	StageBPGDRound
	// StageQueueWait spans a request's submit-to-worker-pickup wait.
	StageQueueWait
	// StageBatchAssemble spans a micro-batch's first-request-to-flush
	// assembly window.
	StageBatchAssemble
	// StageDispatch spans flush-to-worker-pickup of one batch.
	StageDispatch
	// StageDecode spans one Decoder.Decode call at the pool boundary.
	StageDecode
	// StageCopyOut spans the post-decode verify/copy-out work.
	StageCopyOut
	// StageDecodeBatch spans one DecodeBatch call at the pool boundary
	// (arg carries the lane count).
	StageDecodeBatch
	// StageRouterForward spans one request's router-side forward: from
	// the flush to the backend replica until its response frame arrived
	// (arg carries the replica index). Recorded under the request's
	// trace id, so a merged cluster trace nests the replica's
	// queue/decode/copy-out spans inside it.
	StageRouterForward

	numStages
)

// stageNames are the Chrome trace event names; keep in sync with the
// Stage constants.
var stageNames = [numStages]string{
	"bp_iter",
	"hier_base",
	"hier_level",
	"fallback",
	"bpgd_round",
	"queue_wait",
	"batch_assemble",
	"dispatch",
	"decode",
	"copy_out",
	"decode_batch",
	"router_forward",
}

// Name returns the stage's trace-event name.
func (s Stage) Name() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Span is one recorded stage interval, decoded from a ring slot.
type Span struct {
	// Stage identifies the pipeline stage.
	Stage Stage
	// ID groups the spans of one sampled decode (0 for batch-level
	// spans not tied to a request).
	ID uint32
	// Arg carries a stage-specific detail: the BP iteration index, the
	// hierarchical level, a batch size, a syndrome weight.
	Arg int32
	// Start and End are Tick readings (nanoseconds since process
	// start).
	Start, End int64
}
