package obs

import (
	"math"
	"sync/atomic"
)

// Atomic counters, gauges and fixed-bucket histograms (formerly
// internal/serve/metrics.go, promoted here so the simulator and the
// experiment harness report the same telemetry as the server).
// Observation (the hot path) is a handful of atomic operations and
// allocates nothing; rendering (render.go) is free to allocate.

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
//
//vegapunk:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down (e.g. queue depth).
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by delta.
//
//vegapunk:hotpath
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// atomicFloat accumulates a float64 sum with CAS, allocation-free.
type atomicFloat struct{ bits atomic.Uint64 }

//vegapunk:hotpath
func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-boundary histogram. Buckets are non-cumulative
// internally and rendered cumulatively (Prometheus `le` convention).
type Histogram struct {
	bounds []float64       // upper bounds, ascending
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomicFloat
}

// NewHistogram builds a histogram with the given ascending upper
// bounds.
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one sample. Allocation-free.
//
//vegapunk:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Quantile returns an upper-bound estimate of the q-quantile (the
// boundary of the bucket containing it; +Inf bucket reports the largest
// finite bound). Good enough for logs and tests, not for billing.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			break
		}
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// DecodeMetrics is the per-decoder telemetry set promoted out of
// core.Stats: one instance aggregates every decode of one registered
// model (server), one experiment run (sim), or one capture. All methods
// are safe for concurrent use.
type DecodeMetrics struct {
	// Decodes counts Decode calls.
	Decodes Counter
	// BPConverged counts decodes where plain BP reproduced the
	// syndrome.
	BPConverged Counter
	// Fallback counts decodes that engaged OSD/LSD post-processing.
	Fallback Counter
	// BPIters observes the BP iteration count (BP-family decoders).
	BPIters *Histogram
	// HierLevels observes the hierarchical outer-level count
	// (Vegapunk).
	HierLevels *Histogram
	// BPGDRounds observes guided-decimation round counts (BPGD).
	BPGDRounds *Histogram
	// LSDClusterChecks observes the largest cluster's check count
	// (BP+LSD).
	LSDClusterChecks *Histogram
	// SyndromeWeight observes the Hamming weight of decoded syndromes.
	SyndromeWeight *Histogram
}

// NewDecodeMetrics builds the set with the standard bucket layouts.
func NewDecodeMetrics() *DecodeMetrics {
	return &DecodeMetrics{
		BPIters:          NewHistogram(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
		HierLevels:       NewHistogram(1, 2, 3, 4, 6, 8),
		BPGDRounds:       NewHistogram(1, 2, 4, 8, 16, 32, 64),
		LSDClusterChecks: NewHistogram(1, 2, 4, 8, 16, 32, 64, 128),
		SyndromeWeight:   NewHistogram(0, 1, 2, 4, 8, 16, 32, 64, 128, 256),
	}
}

// Record ingests one decode's execution metadata (the fields of
// core.Stats, passed as scalars to keep obs dependency-free).
// Stage histograms observe only when their stage ran (value > 0);
// SyndromeWeight observes every decode, including weight 0.
// Allocation-free.
//
//vegapunk:hotpath
func (m *DecodeMetrics) Record(bpIters int, bpConverged, fallback bool, hierLevels, bpgdRounds, lsdCluster, synWeight int) {
	m.Decodes.Add(1)
	if bpConverged {
		m.BPConverged.Add(1)
	}
	if fallback {
		m.Fallback.Add(1)
	}
	if bpIters > 0 {
		m.BPIters.Observe(float64(bpIters))
	}
	if hierLevels > 0 {
		m.HierLevels.Observe(float64(hierLevels))
	}
	if bpgdRounds > 0 {
		m.BPGDRounds.Observe(float64(bpgdRounds))
	}
	if lsdCluster > 0 {
		m.LSDClusterChecks.Observe(float64(lsdCluster))
	}
	m.SyndromeWeight.Observe(float64(synWeight))
}
