package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestSlowEventAppendJSON(t *testing.T) {
	ev := SlowEvent{
		Seq: 3, ID: 40,
		Model:          `bb-72/bp/p0.001 with "quotes"\and\n` + "\n\t\x01\x7f",
		Decoder:        "BP(30)",
		SyndromeWeight: 5,
		QueueWaitNs:    1200, DecodeNs: 34000, CopyOutNs: 800, TotalNs: 36000,
		BPIters: 17, HierLevels: 2, Satisfied: true,
	}
	line := ev.AppendJSON(nil)
	if !json.Valid(line) {
		t.Fatalf("invalid JSON: %s", line)
	}
	var got struct {
		Seq            uint64 `json:"seq"`
		ID             uint64 `json:"id"`
		Model          string `json:"model"`
		Decoder        string `json:"decoder"`
		SyndromeWeight int    `json:"syndrome_weight"`
		QueueWaitNs    int64  `json:"queue_wait_ns"`
		DecodeNs       int64  `json:"decode_ns"`
		CopyOutNs      int64  `json:"copy_out_ns"`
		TotalNs        int64  `json:"total_ns"`
		BPIters        int    `json:"bp_iters"`
		HierLevels     int    `json:"hier_levels"`
		Satisfied      bool   `json:"satisfied"`
	}
	if err := json.Unmarshal(line, &got); err != nil {
		t.Fatal(err)
	}
	if got.Seq != ev.Seq || got.ID != ev.ID || got.Model != ev.Model ||
		got.Decoder != ev.Decoder || got.SyndromeWeight != ev.SyndromeWeight ||
		got.QueueWaitNs != ev.QueueWaitNs || got.DecodeNs != ev.DecodeNs ||
		got.CopyOutNs != ev.CopyOutNs || got.TotalNs != ev.TotalNs ||
		got.BPIters != ev.BPIters || got.HierLevels != ev.HierLevels ||
		got.Satisfied != ev.Satisfied {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, ev)
	}
}

// gateWriter blocks every Write until released, so tests can hold the
// slow-log writer goroutine mid-write deterministically.
type gateWriter struct {
	entered chan struct{}
	release chan struct{}
	buf     bytes.Buffer
}

func (g *gateWriter) Write(p []byte) (int, error) {
	g.entered <- struct{}{}
	<-g.release
	return g.buf.Write(p)
}

func TestSlowLogDropsWhenFull(t *testing.T) {
	g := &gateWriter{entered: make(chan struct{}), release: make(chan struct{})}
	l := NewSlowLog(g, 1)
	l.Offer(SlowEvent{Model: "m1"})
	<-g.entered                     // writer now blocked inside Write with event 1
	l.Offer(SlowEvent{Model: "m2"}) // fills the 1-slot buffer
	l.Offer(SlowEvent{Model: "m3"}) // must drop, not block
	if got := l.Dropped(); got != 1 {
		t.Fatalf("Dropped() = %d, want 1", got)
	}
	close(g.release)
	<-g.entered // writer enters Write for event 2
	l.Close()
	out := g.buf.String()
	if n := strings.Count(out, "\n"); n != 2 {
		t.Fatalf("wrote %d lines, want 2:\n%s", n, out)
	}
	if !strings.Contains(out, `"seq":1`) || !strings.Contains(out, `"seq":2`) {
		t.Errorf("missing sequence numbers:\n%s", out)
	}
	if strings.Contains(out, "m3") {
		t.Errorf("dropped event was written:\n%s", out)
	}
}

func TestSlowLogOfferDoesNotAllocate(t *testing.T) {
	g := &gateWriter{entered: make(chan struct{}), release: make(chan struct{})}
	l := NewSlowLog(g, 1)
	l.Offer(SlowEvent{Model: "warm"})
	<-g.entered // park the writer so later Offers drop (worst case)
	l.Offer(SlowEvent{Model: "fill"})
	ev := SlowEvent{Model: "bb-72/bp/p0.001", Decoder: "BP(30)", TotalNs: 1e7}
	allocs := testing.AllocsPerRun(1000, func() { l.Offer(ev) })
	if allocs != 0 {
		t.Fatalf("Offer allocates %.1f times per call, want 0", allocs)
	}
	close(g.release)
	go func() {
		for range g.entered { // drain remaining writer round-trips
		}
	}()
	l.Close()
	close(g.entered)
}

func FuzzSlowLogJSON(f *testing.F) {
	f.Add("bb-72/bp/p0.001", "BP(30)", int64(12345), uint64(7), true)
	f.Add("quote\"back\\slash", "\n\r\t\x00\x7f", int64(-1), uint64(0), false)
	f.Add("", "", int64(0), uint64(1<<63), true)
	f.Fuzz(func(t *testing.T, model, decoder string, ns int64, id uint64, ok bool) {
		ev := SlowEvent{
			Seq: id, ID: id, Model: model, Decoder: decoder,
			QueueWaitNs: ns, DecodeNs: ns, CopyOutNs: ns, TotalNs: ns,
			SyndromeWeight: int(id % 1000), BPIters: int(ns % 100), Satisfied: ok,
		}
		line := ev.AppendJSON(nil)
		if !json.Valid(line) {
			t.Fatalf("invalid JSON for %+v: %s", ev, line)
		}
		var got struct {
			Model   string `json:"model"`
			Decoder string `json:"decoder"`
			TotalNs int64  `json:"total_ns"`
		}
		if err := json.Unmarshal(line, &got); err != nil {
			t.Fatalf("unmarshal: %v (%s)", err, line)
		}
		// Strings must round-trip when they are valid UTF-8 (invalid
		// bytes pass through raw; encoding/json replaces them on decode,
		// so only compare clean inputs).
		if isCleanUTF8(model) && got.Model != model {
			t.Errorf("model round trip: got %q want %q", got.Model, model)
		}
		if isCleanUTF8(decoder) && got.Decoder != decoder {
			t.Errorf("decoder round trip: got %q want %q", got.Decoder, decoder)
		}
		if got.TotalNs != ns {
			t.Errorf("total_ns round trip: got %d want %d", got.TotalNs, ns)
		}
	})
}

// isCleanUTF8 reports whether s is valid UTF-8, the precondition for
// byte-exact string round-tripping through encoding/json.
func isCleanUTF8(s string) bool {
	for _, r := range s {
		if r == 0xFFFD {
			return false
		}
	}
	return true
}
