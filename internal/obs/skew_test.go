package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestTickAt pins the wall-to-tick conversion: an instant read "now"
// converts to (approximately) the current tick without TickAt itself
// reading the clock.
func TestTickAt(t *testing.T) {
	now := time.Now()
	tick := Tick()
	at := TickAt(now)
	if diff := at - tick; diff < -int64(time.Second) || diff > int64(time.Second) {
		t.Fatalf("TickAt(now)=%d vs Tick()=%d, diff %d out of tolerance", at, tick, diff)
	}
	future := TickAt(now.Add(time.Hour))
	if future-at < int64(59*time.Minute) {
		t.Fatalf("TickAt one hour ahead advanced only %d ns", future-at)
	}
}

// TestProbeSkew pins the fault-injection clock-skew hook: an active
// probe's clock reads shift by the configured skew, the shared disabled
// probe ignores it, and deactivation leaves the skew harmless.
func TestProbeSkew(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 1})
	ring := tr.Ring()
	p := NewProbe()
	p.Activate(ring, 1)
	const skew = int64(1e15)
	p.SetSkew(skew)
	if got := p.Tick(); got < skew/2 {
		t.Fatalf("skewed Tick = %d, want >= %d", got, skew/2)
	}
	p.SetSkew(0)
	p.Deactivate()
	if got := p.Tick(); got != 0 {
		t.Fatalf("inactive Tick = %d, want 0", got)
	}

	// The shared disabled probe must ignore skew (it is cross-goroutine
	// shared state).
	dp := ProbeOf(42)
	dp.SetSkew(skew)
	if dp.skew != 0 {
		t.Fatal("disabled probe accepted a skew")
	}
}

// TestTraceClampsNegativeDurations records a span whose skewed end
// precedes its start and asserts the Chrome export clamps the duration
// at zero instead of emitting a negative one.
func TestTraceClampsNegativeDurations(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 1})
	ring := tr.Ring()
	p := NewProbe()
	p.Activate(ring, 7)
	p.SetSkew(-int64(time.Hour))
	start := Tick() // unskewed "earlier" edge, far ahead of the skewed clock
	if now := p.SpanSince(StageDecode, 0, start); now >= start {
		t.Fatalf("skewed SpanSince returned %d, want < start %d", now, start)
	}
	p.SetSkew(0)
	p.Deactivate()

	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Dur float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	for i, ev := range out.TraceEvents {
		if ev.Dur < 0 {
			t.Fatalf("event %d has negative duration %g", i, ev.Dur)
		}
	}
}
