package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
)

// decodedTrace mirrors the trace_event JSON for test decoding.
type decodedTrace struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		TS   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		PID  int     `json:"pid"`
		TID  int     `json:"tid"`
		Args struct {
			ID  uint32 `json:"id"`
			Arg int32  `json:"arg"`
		} `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func writeTestSpans(tr *Tracer) {
	r1 := tr.Ring()
	r2 := tr.Ring()
	r1.Record(StageQueueWait, 0, 1, 1000, 2000)
	r1.Record(StageDecode, 17, 1, 2000, 9000)
	r2.Record(StageBPIter, 1, 2, 3000, 4000)
}

func TestWriteTraceJSON(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	writeTestSpans(tr)
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var got decodedTrace
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(got.TraceEvents))
	}
	for i, e := range got.TraceEvents {
		if e.Ph != "X" || e.Cat != "decode" {
			t.Errorf("event %d: ph=%q cat=%q, want complete decode events", i, e.Ph, e.Cat)
		}
		if i > 0 && e.TS < got.TraceEvents[i-1].TS {
			t.Errorf("events not sorted by ts at %d", i)
		}
	}
	// Spans carry their recording ring as the trace tid (worker lanes).
	first := got.TraceEvents[0]
	if first.Name != StageQueueWait.Name() || first.TID != 0 || first.TS != 1.0 || first.Dur != 1.0 {
		t.Errorf("first event = %+v, want queue_wait on tid 0 at 1µs for 1µs", first)
	}
}

func TestWriteTraceMaxSpans(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	writeTestSpans(tr)
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf, 2); err != nil {
		t.Fatal(err)
	}
	var got decodedTrace
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.TraceEvents) != 2 {
		t.Fatalf("got %d events, want the 2 newest", len(got.TraceEvents))
	}
	if got.TraceEvents[len(got.TraceEvents)-1].Name != StageBPIter.Name() {
		t.Errorf("truncation must keep the newest spans, got %+v", got.TraceEvents)
	}
}

func TestTraceHandler(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	writeTestSpans(tr)
	h := TraceHandler(tr)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/decodetrace?n=1", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var got decodedTrace
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.TraceEvents) != 1 {
		t.Errorf("?n=1 returned %d events", len(got.TraceEvents))
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/decodetrace?n=-3", nil))
	if rec.Code != 400 {
		t.Errorf("bad n: status %d, want 400", rec.Code)
	}
}

func TestDebugMuxServesPprof(t *testing.T) {
	mux := DebugMux(NewTracer(TracerConfig{}))
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/decodetrace"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Errorf("GET %s: status %d", path, rec.Code)
		}
	}
}
