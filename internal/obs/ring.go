package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// slot is one ring entry. Every field is atomic so a drainer can read
// concurrently with the single writer without locks or data races; seq
// doubles as a validity tag (0 = never written, otherwise 1 + the write
// index) so a drainer can detect a slot it raced with and skip it.
type slot struct {
	seq   atomic.Uint64
	meta  atomic.Uint64 // Stage<<56 | Arg<<32 | ID
	start atomic.Int64
	end   atomic.Int64
}

// Ring is a fixed-capacity single-writer span buffer. Record never
// blocks and never allocates: when the ring is full it overwrites the
// oldest span (drop-oldest). One goroutine owns the writing side (the
// serve worker, the sim worker, the batcher); Snapshot may run
// concurrently from any goroutine.
type Ring struct {
	slots []slot
	head  atomic.Uint64 // next write index; published after the slot
	id    int32         // trace-event tid, assigned by the Tracer
}

// NewRing builds a ring holding up to capSpans spans (minimum 16).
func NewRing(capSpans int) *Ring {
	if capSpans < 16 {
		capSpans = 16
	}
	return &Ring{slots: make([]slot, capSpans)}
}

// Cap is the fixed span capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Record appends one span, overwriting the oldest when full. Never
// blocks, never allocates. Must only be called from the ring's owning
// goroutine.
//
//vegapunk:hotpath
func (r *Ring) Record(st Stage, arg int32, id uint32, start, end int64) {
	i := r.head.Load()
	s := &r.slots[i%uint64(len(r.slots))]
	s.seq.Store(0) // invalidate for concurrent drainers
	s.meta.Store(uint64(st)<<56 | uint64(uint32(arg)&0xffffff)<<32 | uint64(id))
	s.start.Store(start)
	s.end.Store(end)
	s.seq.Store(i + 1)
	r.head.Store(i + 1)
}

// Snapshot appends the ring's current spans to dst, oldest first, and
// returns the extended slice. Spans overwritten mid-read are skipped
// rather than returned torn.
func (r *Ring) Snapshot(dst []Span) []Span {
	h := r.head.Load()
	n := uint64(len(r.slots))
	lo := uint64(0)
	if h > n {
		lo = h - n
	}
	for i := lo; i < h; i++ {
		s := &r.slots[i%n]
		if s.seq.Load() != i+1 {
			continue // racing writer owns this slot now
		}
		meta := s.meta.Load()
		start, end := s.start.Load(), s.end.Load()
		if s.seq.Load() != i+1 {
			continue // overwritten while reading
		}
		arg := int32(meta >> 32 & 0xffffff)
		if arg&0x800000 != 0 {
			arg |= ^int32(0xffffff) // sign-extend 24-bit args
		}
		dst = append(dst, Span{
			Stage: Stage(meta >> 56),
			Arg:   arg,
			ID:    uint32(meta),
			Start: start,
			End:   end,
		})
	}
	return dst
}

// TracerConfig shapes a Tracer.
type TracerConfig struct {
	// SampleEvery traces one in every N decodes (default 8; 1 traces
	// everything, 0 uses the default).
	SampleEvery uint64
	// RingSpans is the per-goroutine ring capacity (default 1024).
	RingSpans int
}

// Tracer owns the set of per-goroutine span rings and the sampling
// decision. Rings register at goroutine startup (allocating, once);
// recording goes straight to the goroutine-owned ring with no
// coordination. Draining walks all registered rings.
type Tracer struct {
	cfg     TracerConfig
	enabled atomic.Bool
	seq     atomic.Uint64

	mu    sync.Mutex
	rings []*Ring
}

// NewTracer builds an enabled tracer.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 8
	}
	if cfg.RingSpans <= 0 {
		cfg.RingSpans = 1024
	}
	t := &Tracer{cfg: cfg}
	t.enabled.Store(true)
	return t
}

// SetEnabled toggles tracing globally. Disabled tracing reduces the
// hot-path cost to one atomic load per decode.
func (t *Tracer) SetEnabled(on bool) { t.enabled.Store(on) }

// Enabled reports whether tracing is on.
//
//vegapunk:hotpath
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// Ring registers and returns a new span ring for the calling goroutine.
// Call once per long-lived worker, not per decode (it allocates).
func (t *Tracer) Ring() *Ring {
	r := NewRing(t.cfg.RingSpans)
	t.mu.Lock()
	r.id = int32(len(t.rings))
	t.rings = append(t.rings, r)
	t.mu.Unlock()
	return r
}

// NextID draws the next decode id. IDs are globally ordered across all
// users of the tracer so ShouldSample gives a uniform 1-in-N sample.
//
//vegapunk:hotpath
func (t *Tracer) NextID() uint64 { return t.seq.Add(1) }

// ShouldSample reports whether the decode with the given id is traced:
// tracing is enabled and the id falls on the 1-in-SampleEvery lattice.
//
//vegapunk:hotpath
func (t *Tracer) ShouldSample(id uint64) bool {
	return t.enabled.Load() && id%t.cfg.SampleEvery == 0
}

// Spans gathers every registered ring's current contents, ordered by
// start time. Rendering-path only (allocates).
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	rings := append([]*Ring(nil), t.rings...)
	t.mu.Unlock()
	var out []Span
	for _, r := range rings {
		out = r.Snapshot(out)
	}
	sortSpans(out)
	return out
}

// snapshotPerRing snapshots every ring separately so the Chrome export
// can attribute spans to the goroutine (tid) that recorded them.
func (t *Tracer) snapshotPerRing() [][]Span {
	t.mu.Lock()
	rings := append([]*Ring(nil), t.rings...)
	t.mu.Unlock()
	out := make([][]Span, len(rings))
	for i, r := range rings {
		out[i] = r.Snapshot(nil)
	}
	return out
}

func sortSpans(s []Span) {
	sort.Slice(s, func(i, j int) bool { return s[i].Start < s[j].Start })
}

// Probe is a decoder-held recording handle. A decoder owns exactly one
// Probe for its lifetime; the decode boundary (serve worker, sim
// worker, trace capture) activates it with a ring and a decode id for
// the duration of a sampled Decode call and deactivates it after.
// While inactive, the decoder's span edges cost one branch each and
// read no clock.
//
// A Probe is owned by whoever exclusively holds its decoder (the pool
// hand-off provides the happens-before edge), so its fields need no
// atomics.
type Probe struct {
	ring   *Ring
	id     uint32
	active bool
	noop   bool // the shared disabled probe; Activate is ignored
	// skew offsets every clock read while the probe is active. It
	// models a skewed time source (fault injection): span edges shift
	// and can even run backwards relative to spans recorded by an
	// unskewed goroutine, which the renderers must tolerate. Zero in
	// production.
	skew int64
}

// NewProbe returns an inactive probe (decoder construction time).
func NewProbe() *Probe { return &Probe{} }

// disabledProbe is handed out for decoders that carry no probe. It is
// shared across goroutines, so Activate must leave it untouched.
var disabledProbe = &Probe{noop: true}

// Probed is implemented by decoders that expose their recording probe.
type Probed interface{ Probe() *Probe }

// ProbeOf returns x's probe, or a shared permanently-inactive probe if
// x records nothing. The result is always non-nil, so call sites need
// no nil checks.
//
//vegapunk:hotpath
func ProbeOf(x any) *Probe {
	if p, ok := x.(Probed); ok {
		if pr := p.Probe(); pr != nil {
			return pr
		}
	}
	return disabledProbe
}

// Activate arms the probe for one sampled decode: spans record into r
// under decode id.
//
//vegapunk:hotpath
func (p *Probe) Activate(r *Ring, id uint64) {
	if p.noop {
		return
	}
	p.ring = r
	p.id = uint32(id)
	p.active = true
}

// Deactivate disarms the probe after the sampled decode completes.
//
//vegapunk:hotpath
func (p *Probe) Deactivate() {
	if p.noop {
		return
	}
	p.active = false
	p.ring = nil
}

// Active reports whether a sampled decode is in flight.
//
//vegapunk:hotpath
func (p *Probe) Active() bool { return p.active }

// SetSkew offsets the probe's clock reads by ns (fault injection:
// "clock skew on the probe"). Call only while holding the probe's
// decoder exclusively — same ownership rule as Activate. No-op on the
// shared disabled probe.
func (p *Probe) SetSkew(ns int64) {
	if p.noop {
		return
	}
	p.skew = ns
}

// Tick returns the clock if the probe is active and 0 otherwise. Hot
// loops open their first span edge with this so an untraced decode
// never reads the clock.
//
//vegapunk:hotpath
func (p *Probe) Tick() int64 {
	if !p.active {
		return 0
	}
	return Tick() + p.skew
}

// SpanSince records [start, now] for stage st and returns now, so
// consecutive stages share a single clock read per edge. No-op
// (returning 0) while inactive.
//
//vegapunk:hotpath
func (p *Probe) SpanSince(st Stage, arg int, start int64) int64 {
	if !p.active {
		return 0
	}
	now := Tick() + p.skew
	p.ring.Record(st, int32(arg), p.id, start, now)
	return now
}
