package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
)

// Chrome trace_event export: the sampled decode spans rendered as
// complete ("ph":"X") events, loadable in chrome://tracing or Perfetto.
// Each recording goroutine's ring becomes one tid, so queue/batch/
// decode stages line up per worker lane. The types are exported so the
// cluster router can parse a replica's trace dump, realign its clock
// and merge it with the router's own spans into one document.

// TraceEvent is one trace_event entry (the subset we emit).
type TraceEvent struct {
	Name string    `json:"name"`
	Cat  string    `json:"cat"`
	Ph   string    `json:"ph"`
	TS   float64   `json:"ts"`  // microseconds
	Dur  float64   `json:"dur"` // microseconds
	PID  int       `json:"pid"`
	TID  int       `json:"tid"`
	Args TraceArgs `json:"args"`
}

// TraceArgs carries the span's decode id and stage-specific argument.
// Label is only set on "M"-phase metadata events (process naming).
type TraceArgs struct {
	ID    uint32 `json:"id"`
	Arg   int32  `json:"arg"`
	Label string `json:"name,omitempty"`
}

// TraceDoc is the object form of the trace_event format. TickUs is a
// vegapunk extension: the emitting process's obs clock (Tick, in
// microseconds) read while rendering, so a fetcher can estimate the
// clock offset between its own epoch and the emitter's from the fetch
// round trip.
type TraceDoc struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TickUs          float64      `json:"tickUs,omitempty"`
}

// Events renders the tracer's current spans as trace events under the
// given pid. maxSpans > 0 keeps only the newest maxSpans spans (per
// their start tick); 0 keeps everything currently buffered.
func (t *Tracer) Events(pid, maxSpans int) []TraceEvent {
	perRing := t.snapshotPerRing()
	var events []TraceEvent
	for tid, spans := range perRing {
		for _, s := range spans {
			// A skewed probe (fault injection) can record End < Start;
			// Chrome's viewer rejects negative durations, so clamp.
			dur := s.End - s.Start
			if dur < 0 {
				dur = 0
			}
			events = append(events, TraceEvent{
				Name: s.Stage.Name(),
				Cat:  "decode",
				Ph:   "X",
				TS:   float64(s.Start) / 1e3,
				Dur:  float64(dur) / 1e3,
				PID:  pid,
				TID:  tid,
				Args: TraceArgs{ID: s.ID, Arg: s.Arg},
			})
		}
	}
	SortTraceEvents(events)
	if maxSpans > 0 && len(events) > maxSpans {
		events = events[len(events)-maxSpans:]
	}
	return events
}

// SortTraceEvents orders events by start timestamp (metadata events,
// which carry TS 0, sort first).
func SortTraceEvents(events []TraceEvent) {
	sort.Slice(events, func(i, j int) bool { return events[i].TS < events[j].TS })
}

// ProcessNameEvent builds the "M"-phase metadata event that names pid
// in the trace viewer's process list.
func ProcessNameEvent(pid int, name string) TraceEvent {
	return TraceEvent{Name: "process_name", Ph: "M", PID: pid, Args: TraceArgs{Label: name}}
}

// WriteTraceDoc encodes events as one trace_event JSON document,
// stamping the current obs clock into TickUs.
func WriteTraceDoc(w io.Writer, events []TraceEvent) error {
	enc := json.NewEncoder(w)
	return enc.Encode(TraceDoc{
		TraceEvents:     events,
		DisplayTimeUnit: "ns",
		TickUs:          float64(Tick()) / 1e3,
	})
}

// WriteTrace renders the tracer's current spans as Chrome trace_event
// JSON. maxSpans > 0 keeps only the newest maxSpans spans (per their
// start tick); 0 writes everything currently buffered.
func (t *Tracer) WriteTrace(w io.Writer, maxSpans int) error {
	return WriteTraceDoc(w, t.Events(1, maxSpans))
}

// TraceHandler serves the tracer's buffered spans as Chrome trace JSON:
// GET /debug/decodetrace?n=500 bounds the span count.
func TraceHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n, ok := ParseSpanCount(w, r)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := t.WriteTrace(w, n); err != nil {
			// Headers are gone; nothing useful left to do.
			return
		}
	})
}

// ParseSpanCount reads the ?n= span bound shared by the trace
// endpoints, answering 400 itself on a malformed value.
func ParseSpanCount(w http.ResponseWriter, r *http.Request) (int, bool) {
	q := r.URL.Query().Get("n")
	if q == "" {
		return 0, true
	}
	v, err := strconv.Atoi(q)
	if err != nil || v < 0 {
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprintf(w, "bad n %q\n", q)
		return 0, false
	}
	return v, true
}

// DebugMux builds the diagnostic mux served on a daemon's -debug-addr:
// the stdlib pprof endpoints plus the decode-trace dump. Keep this
// listener on localhost or behind auth — profiles expose internals.
func DebugMux(t *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if t != nil {
		mux.Handle("/debug/decodetrace", TraceHandler(t))
	}
	return mux
}
