package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
)

// Chrome trace_event export: the sampled decode spans rendered as
// complete ("ph":"X") events, loadable in chrome://tracing or Perfetto.
// Each recording goroutine's ring becomes one tid, so queue/batch/
// decode stages line up per worker lane.

// traceEvent is one trace_event entry (the subset we emit).
type traceEvent struct {
	Name string    `json:"name"`
	Cat  string    `json:"cat"`
	Ph   string    `json:"ph"`
	TS   float64   `json:"ts"`  // microseconds
	Dur  float64   `json:"dur"` // microseconds
	PID  int       `json:"pid"`
	TID  int       `json:"tid"`
	Args traceArgs `json:"args"`
}

type traceArgs struct {
	ID  uint32 `json:"id"`
	Arg int32  `json:"arg"`
}

// traceFile is the object form of the trace_event format.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace renders the tracer's current spans as Chrome trace_event
// JSON. maxSpans > 0 keeps only the newest maxSpans spans (per their
// start tick); 0 writes everything currently buffered.
func (t *Tracer) WriteTrace(w io.Writer, maxSpans int) error {
	perRing := t.snapshotPerRing()
	var events []traceEvent
	for tid, spans := range perRing {
		for _, s := range spans {
			// A skewed probe (fault injection) can record End < Start;
			// Chrome's viewer rejects negative durations, so clamp.
			dur := s.End - s.Start
			if dur < 0 {
				dur = 0
			}
			events = append(events, traceEvent{
				Name: s.Stage.Name(),
				Cat:  "decode",
				Ph:   "X",
				TS:   float64(s.Start) / 1e3,
				Dur:  float64(dur) / 1e3,
				PID:  1,
				TID:  tid,
				Args: traceArgs{ID: s.ID, Arg: s.Arg},
			})
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	if maxSpans > 0 && len(events) > maxSpans {
		events = events[len(events)-maxSpans:]
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ns"})
}

// TraceHandler serves the tracer's buffered spans as Chrome trace JSON:
// GET /debug/decodetrace?n=500 bounds the span count.
func TraceHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				w.WriteHeader(http.StatusBadRequest)
				fmt.Fprintf(w, "bad n %q\n", q)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		if err := t.WriteTrace(w, n); err != nil {
			// Headers are gone; nothing useful left to do.
			return
		}
	})
}

// DebugMux builds the diagnostic mux served on a daemon's -debug-addr:
// the stdlib pprof endpoints plus the decode-trace dump. Keep this
// listener on localhost or behind auth — profiles expose internals.
func DebugMux(t *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if t != nil {
		mux.Handle("/debug/decodetrace", TraceHandler(t))
	}
	return mux
}
