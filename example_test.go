package vegapunk_test

import (
	"fmt"

	"vegapunk"
)

// ExampleNewVegapunk shows the end-to-end decode flow: build a code,
// attach noise, run the offline decoupling, decode a syndrome.
func ExampleNewVegapunk() {
	c, _ := vegapunk.BBCode(0) // [[72,12,6]]
	model := vegapunk.CircuitLevelNoise(c, 0.001)
	dec, _ := vegapunk.NewVegapunk(model, vegapunk.VegapunkOptions{MaxIters: 3})

	// A single measurement error on check 7.
	err := vegapunkVecWithBit(model.NumMech(), 4*c.N+7)
	syndrome := model.Syndrome(err)
	est, _ := dec.Decode(syndrome)
	fmt.Println("syndrome satisfied:", model.CheckMatrix().MulVec(est).Equal(syndrome))
	fmt.Println("observables preserved:", model.Observables(est).Equal(model.Observables(err)))
	// Output:
	// syndrome satisfied: true
	// observables preserved: true
}

func vegapunkVecWithBit(n, i int) vegapunk.Vec {
	v := vegapunk.NewVec(n)
	v.Set(i, true)
	return v
}

// ExampleDecouple demonstrates the offline stage on a hypergraph product
// code, where the paper's analytic block structure (K = t) is recovered.
func ExampleDecouple() {
	c, _ := vegapunk.HPCode(0) // [[162,2,4]]
	model := vegapunk.PhenomenologicalNoise(c, 0.001, 0.001)
	art, _ := vegapunk.Decouple(model.CheckMatrix(), vegapunk.DecoupleOptions{HintKs: []int{9}})
	fmt.Printf("K=%d blocks of [%d,%d], A has %d columns\n", art.K, art.MD, art.ND, art.NA)
	fmt.Println("valid:", art.Validate(model.CheckMatrix()) == nil)
	// Output:
	// K=9 blocks of [9,18], A has 81 columns
	// valid: true
}

// ExampleFitThreshold fits the paper's Eq. 17 to synthetic data.
func ExampleFitThreshold() {
	ps := []float64{5e-4, 1e-3, 2e-3, 5e-3}
	pls := []float64{2.5e-5, 1e-4, 4e-4, 2.5e-3} // slope 2 through pt = 0.01
	fit, _ := vegapunk.FitThreshold(ps, pls)
	fmt.Printf("threshold %.3f%%, slope %.1f\n", 100*fit.Pt, fit.K)
	// Output:
	// threshold 1.000%, slope 2.0
}
