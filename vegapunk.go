// Package vegapunk is a from-scratch Go reproduction of Vegapunk
// (MICRO 2025): accurate and fast decoding for quantum LDPC codes with
// an offline SMT-style check-matrix decoupling, an online hierarchical
// greedy decoding algorithm, and a cycle-level model of the sparse
// hardware accelerator — together with every baseline the paper
// compares against (BP, BP+OSD, BP+LSD, BPGD), the Bivariate Bicycle
// and Hypergraph Product code constructions, noise models, and a
// Monte-Carlo logical-error-rate harness.
//
// # Quickstart
//
//	c, _ := vegapunk.BBCode(0)                       // [[72,12,6]]
//	model := vegapunk.CircuitLevelNoise(c, 0.001)    // per-round DEM
//	dec, _ := vegapunk.NewVegapunk(model, vegapunk.VegapunkOptions{})
//	syndrome := model.Syndrome(e)                    // e: sampled error
//	estimate, _ := dec.Decode(syndrome)
//
// See the examples/ directory for runnable end-to-end programs and
// cmd/experiments for the paper's tables and figures.
package vegapunk

import (
	"io"

	"vegapunk/internal/accel"
	"vegapunk/internal/circuit"
	"vegapunk/internal/code"
	"vegapunk/internal/core"
	"vegapunk/internal/decouple"
	"vegapunk/internal/dem"
	"vegapunk/internal/gf2"
	"vegapunk/internal/hier"
	"vegapunk/internal/serve"
	"vegapunk/internal/sim"
	"vegapunk/internal/window"
)

// Core re-exported types. Aliases keep the internal packages and the
// public façade interchangeable.
type (
	// CSS is a CSS quantum code ([[n,k,d]] with HX, HZ).
	CSS = code.CSS
	// Model is a per-round detector error model (mechanisms, priors,
	// observables).
	Model = dem.Model
	// Decoder is the uniform syndrome-decoder interface.
	Decoder = core.Decoder
	// Stats is per-decode execution metadata.
	Stats = core.Stats
	// Decoupling is the offline artifact D' = T·D·P = (diag(D_i) | A).
	Decoupling = decouple.Decoupling
	// DecoupleOptions tunes the offline search.
	DecoupleOptions = decouple.Options
	// VegapunkOptions tunes the online hierarchical decoder.
	VegapunkOptions = hier.Config
	// Vec is a GF(2) bit vector (syndromes, errors).
	Vec = gf2.Vec
	// Matrix is a dense GF(2) matrix.
	Matrix = gf2.Dense
	// LERResult reports a Monte-Carlo memory experiment.
	LERResult = sim.LERResult
	// MemoryConfig parameterizes a memory experiment.
	MemoryConfig = sim.MemoryConfig
	// ThresholdFit is an Eq. 17 accuracy-threshold fit.
	ThresholdFit = sim.ThresholdFit
	// AcceleratorParams holds the hardware model constants.
	AcceleratorParams = accel.Params
)

// ---- Codes ----

// BBCode constructs the i-th Bivariate Bicycle benchmark code
// (0 = [[72,12,6]] … 5 = [[784,24,24]]).
func BBCode(i int) (*CSS, error) { return code.NewBBByIndex(i) }

// NumBBCodes is the number of registered BB benchmark codes.
func NumBBCodes() int { return len(code.BBRegistry) }

// HPCode constructs the i-th Hypergraph Product benchmark code
// (0 = [[162,2,4]] … 5 = [[1488,30,7]]).
func HPCode(i int) (*CSS, error) { return code.NewHPByIndex(i) }

// NumHPCodes is the number of registered HP benchmark codes.
func NumHPCodes() int { return len(code.HPRegistry) }

// NewHPFromCirculants builds a hypergraph product code from two square
// circulant seed codes given by their sizes and exponent sets.
func NewHPFromCirculants(name string, l1 int, a1 []int, l2 int, a2 []int, d int) (*CSS, error) {
	return code.NewHP(name, code.Circulant(l1, a1), code.Circulant(l2, a2), d)
}

// ---- Noise models ----

// CodeCapacityNoise builds the simplest model: independent data-qubit
// errors, perfect measurement.
func CodeCapacityNoise(c *CSS, p float64) *Model { return dem.CodeCapacity(c, p) }

// PhenomenologicalNoise adds measurement errors (check matrix [H | I]),
// the paper's HP-code setting.
func PhenomenologicalNoise(c *CSS, p, q float64) *Model { return dem.Phenomenological(c, p, q) }

// CircuitLevelNoise builds the circuit-level-lite model with 5n error
// mechanisms per round, the paper's BB-code setting.
func CircuitLevelNoise(c *CSS, p float64) *Model { return dem.CircuitLevel(c, p) }

// ---- Offline stage ----

// Decouple runs the offline stage on an arbitrary check matrix.
func Decouple(D *Matrix, opts DecoupleOptions) (*Decoupling, error) {
	return decouple.Decouple(D, opts)
}

// SaveDecoupling writes the offline artifact (JSON).
func SaveDecoupling(d *Decoupling, w io.Writer) error {
	_, err := d.WriteTo(w)
	return err
}

// LoadDecoupling reads an artifact written by SaveDecoupling.
func LoadDecoupling(r io.Reader) (*Decoupling, error) { return decouple.Read(r) }

// ---- Decoders ----

// NewVegapunk builds the paper's decoder end to end: offline decoupling
// of the model's check matrix plus the online hierarchical decoder.
func NewVegapunk(model *Model, cfg VegapunkOptions) (Decoder, error) {
	return core.BuildVegapunk(model, decouple.Options{}, cfg)
}

// NewVegapunkWith builds the online decoder from a pre-computed
// decoupling artifact.
func NewVegapunkWith(model *Model, d *Decoupling, cfg VegapunkOptions) Decoder {
	return core.NewVegapunkFrom(model, d, cfg)
}

// NewBP builds the plain belief-propagation baseline (min-sum;
// maxIters ≤ 0 uses n).
func NewBP(model *Model, maxIters int) Decoder { return core.NewBP(model, maxIters) }

// NewBPOSD builds the BP+OSD-CS(t) accuracy baseline (order ≤ 0 uses
// the paper's t = 7).
func NewBPOSD(model *Model, bpIters, order int) Decoder { return core.NewBPOSD(model, bpIters, order) }

// NewBPLSD builds the BP+LSD baseline (30 BP iterations, order 0).
func NewBPLSD(model *Model) Decoder { return core.NewBPLSD(model) }

// NewBPGD builds the BP-guided-decimation baseline.
func NewBPGD(model *Model) Decoder { return core.NewBPGD(model) }

// ---- Evaluation ----

// RunMemory executes a multi-round quantum memory experiment and
// reports logical error rates.
func RunMemory(model *Model, factory func() Decoder, cfg MemoryConfig) LERResult {
	return sim.RunMemory(model, core.Factory(factory), cfg)
}

// FitThreshold fits the paper's Eq. 17 to (p, per-round LER) samples.
func FitThreshold(ps, pLs []float64) (ThresholdFit, error) { return sim.FitThreshold(ps, pLs) }

// DefaultAccelerator returns the hardware model calibrated against the
// paper's Table 2/4 anchors.
func DefaultAccelerator() AcceleratorParams { return accel.DefaultParams() }

// ---- Space-time and sliding-window decoding (extensions) ----

// SpaceTimeModel unrolls a per-round model over several rounds into one
// batch detector error model (syndrome-difference convention,
// measurement errors straddling consecutive rounds).
func SpaceTimeModel(m *Model, rounds int) *Model { return dem.SpaceTime(m, rounds) }

// CircuitParams sets physical fault strengths for the syndrome-
// extraction-circuit noise model.
type CircuitParams = circuit.Params

// CircuitMemoryDEM derives a memory experiment's detector error model
// from an explicitly scheduled syndrome-extraction circuit by exhaustive
// fault propagation (rounds noisy extraction rounds + one ideal
// readout).
func CircuitMemoryDEM(c *CSS, params CircuitParams, rounds int) (*Model, error) {
	return circuit.MemoryDEM(c, params, rounds)
}

// WindowConfig shapes sliding-window decoding.
type WindowConfig = window.Config

// WindowRunner decodes long syndrome streams with overlapping
// space-time windows.
type WindowRunner = window.Runner

// NewWindow builds a sliding-window runner over a per-round model; the
// factory constructs the inner decoder for the window's space-time
// model.
func NewWindow(per *Model, cfg WindowConfig, factory func(*Model) Decoder) (*WindowRunner, error) {
	return window.New(per, cfg, func(m *dem.Model) core.Decoder { return factory(m) })
}

// NewVec returns an all-zero GF(2) vector of length n (syndrome or
// error construction).
func NewVec(n int) Vec { return gf2.NewVec(n) }

// ---- Online decoding service ----

// ServeConfig shapes the decoding service (micro-batching, decoder
// pooling, admission control); the zero value uses sensible defaults.
type ServeConfig = serve.Config

// DecodeServer is the HTTP decoding service: register models, then
// ListenAndServe. See cmd/vegapunkd for the ready-made daemon.
type DecodeServer = serve.Server

// DecodeService is one registered model's decode queue, usable directly
// from Go without the HTTP layer.
type DecodeService = serve.Service

// DecodeResult is a caller-owned decode result; reuse one across calls
// for allocation-free steady-state serving.
type DecodeResult = serve.Result

// DecoderPool multiplexes single-goroutine decoder instances across
// concurrent callers with acquire/release semantics.
type DecoderPool = serve.Pool

// NewDecodeServer builds an empty decoding service; register models via
// (*DecodeServer).Register before serving.
func NewDecodeServer(cfg ServeConfig) *DecodeServer { return serve.NewServer(cfg) }

// NewDecoderPool builds a bounded lazy pool over a decoder factory
// (size ≤ 0 uses GOMAXPROCS).
func NewDecoderPool(factory func() Decoder, size int) *DecoderPool {
	return serve.NewPool(core.Factory(factory), size)
}

// ServeModelKey derives the canonical model registry key used by
// cmd/vegapunkd and cmd/decodeload.
func ServeModelKey(codeName, decoderName string, p float64) string {
	return serve.ModelKey(codeName, decoderName, p)
}
