package vegapunk

// Benchmarks regenerating every table and figure of the paper's
// evaluation section (one bench per exhibit, at the Quick Monte-Carlo
// budget — run `cmd/experiments -quality normal|full` for the printed
// paper-style rows at higher statistics), plus micro-benchmarks of the
// hot kernels and the ablation benches called out in DESIGN.md §4.

import (
	"io"
	"math/rand/v2"
	"runtime"
	"testing"

	"vegapunk/internal/bp"
	"vegapunk/internal/core"
	"vegapunk/internal/decouple"
	"vegapunk/internal/exp"
	"vegapunk/internal/gf2"
	"vegapunk/internal/hier"
	"vegapunk/internal/osd"
)

// runExperiment executes one paper experiment at bench budget.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := exp.Config{
		Out:     io.Discard,
		Quality: exp.Quick,
		Workers: runtime.GOMAXPROCS(0),
		Seed:    2025,
	}
	for i := 0; i < b.N; i++ {
		ws := exp.NewWorkspace()
		if err := r.Run(cfg, ws); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- One bench per paper exhibit ----

func BenchmarkFig2Degeneracy(b *testing.B)         { runExperiment(b, "fig2") }
func BenchmarkFig3aMotivationLER(b *testing.B)     { runExperiment(b, "fig3a") }
func BenchmarkFig3bMotivationLatency(b *testing.B) { runExperiment(b, "fig3b") }
func BenchmarkTable1Scaling(b *testing.B)          { runExperiment(b, "table1") }
func BenchmarkTable2Decoupling(b *testing.B) {
	// The offline stage of Table 2 in isolation: decouple every
	// benchmark code and validate the factorization.
	for i := 0; i < b.N; i++ {
		ws := exp.NewWorkspace()
		for _, bench := range exp.Benchmarks() {
			if _, err := ws.Decoupling(bench); err != nil {
				b.Fatal(err)
			}
		}
	}
}
func BenchmarkTable2Latency(b *testing.B)           { runExperiment(b, "table2") }
func BenchmarkTable2Thresholds(b *testing.B)        { runExperiment(b, "table2") }
func BenchmarkTable3Dump(b *testing.B)              { runExperiment(b, "table3") }
func BenchmarkFig10LER(b *testing.B)                { runExperiment(b, "fig10") }
func BenchmarkFig11aThresholdScaling(b *testing.B)  { runExperiment(b, "fig11a") }
func BenchmarkFig11bLatencyScaling(b *testing.B)    { runExperiment(b, "fig11b") }
func BenchmarkTable4Utilization(b *testing.B)       { runExperiment(b, "table4") }
func BenchmarkFig12DecouplingAblation(b *testing.B) { runExperiment(b, "fig12") }
func BenchmarkFig13IterationAblation(b *testing.B)  { runExperiment(b, "fig13") }
func BenchmarkFig14aBaselineLatency(b *testing.B)   { runExperiment(b, "fig14a") }
func BenchmarkFig14bBaselineThreshold(b *testing.B) { runExperiment(b, "fig14b") }

// ---- Hot-kernel micro-benchmarks ----

// bb72Fixture builds the [[72,12,6]] circuit-level model, a decoupling
// and a pile of sampled syndromes.
func bb72Fixture(b *testing.B, p float64) (*Model, *Decoupling, []Vec) {
	b.Helper()
	c, err := BBCode(0)
	if err != nil {
		b.Fatal(err)
	}
	model := CircuitLevelNoise(c, p)
	dcp, err := Decouple(model.CheckMatrix(), DecoupleOptions{Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	syndromes := make([]Vec, 256)
	for i := range syndromes {
		syndromes[i] = model.Syndrome(model.Sample(rng))
	}
	return model, dcp, syndromes
}

func BenchmarkVegapunkDecodeBB72(b *testing.B) {
	model, dcp, syn := bb72Fixture(b, 0.005)
	dec := hier.New(dcp, model.LLRs(), hier.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Decode(syn[i%len(syn)])
	}
}

func BenchmarkVegapunkDecodeParallelBB72(b *testing.B) {
	model, dcp, syn := bb72Fixture(b, 0.005)
	dec := hier.New(dcp, model.LLRs(), hier.Config{Parallel: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Decode(syn[i%len(syn)])
	}
}

func BenchmarkBPDecodeBB72(b *testing.B) {
	model, _, syn := bb72Fixture(b, 0.005)
	dec := bp.New(model.Mech, model.LLRs(), bp.Config{MaxIters: 72})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Decode(syn[i%len(syn)])
	}
}

func BenchmarkBPOSDDecodeBB72(b *testing.B) {
	model, _, syn := bb72Fixture(b, 0.005)
	dec := osd.NewBPOSD(model.Mech, model.LLRs(),
		bp.Config{MaxIters: 72}, osd.Config{Method: osd.CombinationSweep, Order: 7})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Decode(syn[i%len(syn)])
	}
}

// BenchmarkMemoryExperimentBB72 is the end-to-end wall-clock benchmark
// of the acceptance criterion: a multi-round BB-code memory experiment
// decoded by Vegapunk, exercising the full sample → syndrome → decode →
// observable pipeline per round.
func BenchmarkMemoryExperimentBB72(b *testing.B) {
	c, err := BBCode(0)
	if err != nil {
		b.Fatal(err)
	}
	model := CircuitLevelNoise(c, 0.003)
	dcp, err := Decouple(model.CheckMatrix(), DecoupleOptions{Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	factory := func() Decoder { return NewVegapunkWith(model, dcp, VegapunkOptions{}) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunMemory(model, factory, MemoryConfig{
			Rounds:  6,
			Shots:   64,
			Workers: runtime.GOMAXPROCS(0),
			Seed:    2025,
		})
	}
}

func BenchmarkDecoupleBB72(b *testing.B) {
	c, err := BBCode(0)
	if err != nil {
		b.Fatal(err)
	}
	model := CircuitLevelNoise(c, 0.001)
	D := model.CheckMatrix()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decouple.Decouple(D, decouple.Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGF2MulVec(b *testing.B) {
	rng := rand.New(rand.NewPCG(2, 2))
	m := gf2.NewDense(392, 3920)
	for i := 0; i < 392; i++ {
		for j := 0; j < 3920; j++ {
			if rng.IntN(100) == 0 {
				m.Set(i, j, true)
			}
		}
	}
	v := gf2.NewVec(3920)
	for j := 0; j < 3920; j++ {
		if rng.IntN(20) == 0 {
			v.Set(j, true)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(v)
	}
}

func BenchmarkGF2RowReduce(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 3))
	src := gf2.NewDense(200, 400)
	for i := 0; i < 200; i++ {
		for j := 0; j < 400; j++ {
			if rng.IntN(10) == 0 {
				src.Set(i, j, true)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Clone().RowReduce()
	}
}

// ---- Ablation benches (DESIGN.md §4) ----

// BenchmarkAblationIncremental compares the syndrome incremental update
// (the paper's HDU design) against full block re-decodes per candidate.
func BenchmarkAblationIncremental(b *testing.B) {
	model, dcp, syn := bb72Fixture(b, 0.005)
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"incremental", false}, {"full-recompute", true}} {
		b.Run(mode.name, func(b *testing.B) {
			dec := hier.New(dcp, model.LLRs(), hier.Config{DisableIncremental: mode.disable})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dec.Decode(syn[i%len(syn)])
			}
		})
	}
}

// BenchmarkAblationGreedyWidth sweeps the GreedyGuess inner iteration
// budget.
func BenchmarkAblationGreedyWidth(b *testing.B) {
	model, dcp, syn := bb72Fixture(b, 0.005)
	for _, inner := range []int{1, 2, 3, 5} {
		b.Run(benchName("inner", inner), func(b *testing.B) {
			dec := hier.New(dcp, model.LLRs(), hier.Config{InnerIters: inner})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dec.Decode(syn[i%len(syn)])
			}
		})
	}
}

// BenchmarkAblationOuterM sweeps the outer iteration budget M (the
// latency half of Figure 13 in software).
func BenchmarkAblationOuterM(b *testing.B) {
	model, dcp, syn := bb72Fixture(b, 0.005)
	for _, m := range []int{1, 3, 5, 7} {
		b.Run(benchName("M", m), func(b *testing.B) {
			dec := hier.New(dcp, model.LLRs(), hier.Config{MaxIters: m})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dec.Decode(syn[i%len(syn)])
			}
		})
	}
}

// BenchmarkAblationMinSumVariant compares min-sum against sum-product
// check updates.
func BenchmarkAblationMinSumVariant(b *testing.B) {
	model, _, syn := bb72Fixture(b, 0.005)
	for _, v := range []struct {
		name    string
		variant bp.Variant
	}{{"min-sum", bp.MinSum}, {"sum-product", bp.SumProduct}} {
		b.Run(v.name, func(b *testing.B) {
			dec := bp.New(model.Mech, model.LLRs(), bp.Config{MaxIters: 72, Variant: v.variant})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dec.Decode(syn[i%len(syn)])
			}
		})
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + string(rune('0'+v))
}

// silence unused-import nits if the build tags shift.
var _ = core.Factory(nil)

// ---- Extension benches: circuit-derived noise and sliding windows ----

func BenchmarkCircuitDEMConstruction(b *testing.B) {
	c, err := BBCode(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CircuitMemoryDEM(c, CircuitParams{P: 0.001}, 6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSlidingWindowDecode(b *testing.B) {
	c, err := HPCode(0)
	if err != nil {
		b.Fatal(err)
	}
	per := PhenomenologicalNoise(c, 0.003, 0.003)
	cfg := WindowConfig{Window: 4, Commit: 2}
	st := SpaceTimeModel(per, cfg.Window)
	art, err := Decouple(st.CheckMatrix(), DecoupleOptions{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	runner, err := NewWindow(per, cfg, func(m *Model) Decoder {
		return NewVegapunkWith(m, art, VegapunkOptions{})
	})
	if err != nil {
		b.Fatal(err)
	}
	const rounds = 12
	full := SpaceTimeModel(per, rounds)
	rng := rand.New(rand.NewPCG(8, 8))
	syndromes := make([]Vec, 32)
	for i := range syndromes {
		syndromes[i] = full.Syndrome(full.Sample(rng))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner.DecodeStream(syndromes[i%len(syndromes)], rounds)
	}
}

func BenchmarkSpaceTimeUnroll(b *testing.B) {
	c, err := BBCode(3) // [[144,12,12]]
	if err != nil {
		b.Fatal(err)
	}
	per := CircuitLevelNoise(c, 0.001)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SpaceTimeModel(per, 12)
	}
}

// BenchmarkAblationBPSchedule compares flooding vs layered message
// passing (layered converges in fewer iterations, serializing the
// hardware).
func BenchmarkAblationBPSchedule(b *testing.B) {
	model, _, syn := bb72Fixture(b, 0.005)
	for _, s := range []struct {
		name string
		sch  bp.Schedule
	}{{"flooding", bp.Flooding}, {"layered", bp.Layered}} {
		b.Run(s.name, func(b *testing.B) {
			dec := bp.New(model.Mech, model.LLRs(), bp.Config{MaxIters: 72, Schedule: s.sch})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dec.Decode(syn[i%len(syn)])
			}
		})
	}
}
