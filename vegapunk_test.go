package vegapunk

import (
	"bytes"
	"context"
	"math"
	"math/rand/v2"
	"testing"
)

func TestPublicQuickstartFlow(t *testing.T) {
	c, err := BBCode(0)
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 72 || c.K != 12 {
		t.Fatalf("BBCode(0) = [[%d,%d]]", c.N, c.K)
	}
	model := CircuitLevelNoise(c, 0.004)
	dec, err := NewVegapunk(model, VegapunkOptions{MaxIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	H := model.CheckMatrix()
	for i := 0; i < 15; i++ {
		e := model.Sample(rng)
		s := model.Syndrome(e)
		est, stats := dec.Decode(s)
		if !H.MulVec(est).Equal(s) {
			t.Fatal("public API decode violated syndrome")
		}
		if stats.Hier.OuterIters < 1 {
			t.Fatal("stats not propagated")
		}
	}
}

func TestPublicRegistryCounts(t *testing.T) {
	if NumBBCodes() != 6 || NumHPCodes() != 6 {
		t.Errorf("registry counts %d/%d, want 6/6", NumBBCodes(), NumHPCodes())
	}
	for i := 0; i < 2; i++ {
		if _, err := HPCode(i); err != nil {
			t.Errorf("HPCode(%d): %v", i, err)
		}
	}
}

func TestPublicCustomHP(t *testing.T) {
	c, err := NewHPFromCirculants("custom", 5, []int{0, 1}, 5, []int{0, 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 50 || c.K != 2 {
		t.Errorf("custom HP = [[%d,%d]], want [[50,2]]", c.N, c.K)
	}
}

func TestPublicSaveLoadDecoupling(t *testing.T) {
	c, err := HPCode(0)
	if err != nil {
		t.Fatal(err)
	}
	model := PhenomenologicalNoise(c, 0.002, 0.002)
	art, err := Decouple(model.CheckMatrix(), DecoupleOptions{HintKs: []int{9}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveDecoupling(art, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDecoupling(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(model.CheckMatrix()); err != nil {
		t.Fatal(err)
	}
	dec := NewVegapunkWith(model, back, VegapunkOptions{})
	s := model.Syndrome(model.Sample(rand.New(rand.NewPCG(3, 4))))
	est, _ := dec.Decode(s)
	if !model.CheckMatrix().MulVec(est).Equal(s) {
		t.Fatal("decoder from loaded artifact violated syndrome")
	}
}

func TestPublicRunMemoryAndBaselines(t *testing.T) {
	c, err := BBCode(0)
	if err != nil {
		t.Fatal(err)
	}
	model := CircuitLevelNoise(c, 0.003)
	for _, mk := range []func() Decoder{
		func() Decoder { return NewBP(model, 50) },
		func() Decoder { return NewBPOSD(model, 50, 7) },
		func() Decoder { return NewBPLSD(model) },
		func() Decoder { return NewBPGD(model) },
	} {
		res := RunMemory(model, mk, MemoryConfig{Rounds: 2, Shots: 30, Seed: 5})
		if res.Shots != 30 {
			t.Errorf("%s: shots %d", mk().Name(), res.Shots)
		}
		if res.LER < 0 || res.LER > 1 {
			t.Errorf("%s: LER %v", mk().Name(), res.LER)
		}
	}
}

func TestPublicFitThreshold(t *testing.T) {
	k, pt := 2.5, 0.005
	var ps, pls []float64
	for _, p := range []float64{1e-3, 2e-3, 4e-3} {
		ps = append(ps, p)
		pls = append(pls, math.Exp(k*math.Log(p)+(1-k)*math.Log(pt)))
	}
	fit, err := FitThreshold(ps, pls)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Pt-pt) > 1e-9 {
		t.Errorf("fit pt = %v", fit.Pt)
	}
}

func TestPublicAccelerator(t *testing.T) {
	params := DefaultAccelerator()
	if params.BPLatency(100) <= 0 {
		t.Error("BP latency model broken")
	}
	c, err := BBCode(0)
	if err != nil {
		t.Fatal(err)
	}
	model := CircuitLevelNoise(c, 0.001)
	art, err := Decouple(model.CheckMatrix(), DecoupleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep := params.VegapunkLatency(art, 3, 3)
	if rep.Latency.Microseconds() >= 1 {
		t.Errorf("worst-case latency %v not sub-µs", rep.Latency)
	}
	u := params.VegapunkUtilization(art)
	if u.LUTPct <= 0 || u.LUTPct > 100 {
		t.Errorf("utilization %v", u.LUTPct)
	}
}

func TestPublicDecodeServer(t *testing.T) {
	c, err := BBCode(0)
	if err != nil {
		t.Fatal(err)
	}
	model := CodeCapacityNoise(c, 0.01)
	srv := NewDecodeServer(ServeConfig{MaxBatch: 4})
	key := ServeModelKey("BB [[72,12,6]]", "BP", 0.01)
	svc, err := srv.Register(key, model, "BP(30)", func() Decoder { return NewBP(model, 30) })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	rng := rand.New(rand.NewPCG(5, 6))
	ref := NewBP(model, 30)
	var res DecodeResult
	for i := 0; i < 10; i++ {
		e := model.Sample(rng)
		s := model.Syndrome(e)
		if err := svc.DecodeInto(context.Background(), &res, s); err != nil {
			t.Fatal(err)
		}
		want, _ := ref.Decode(s)
		if !res.Correction.Equal(want) {
			t.Fatalf("decode %d: served correction differs from direct decode", i)
		}
	}
}

func TestPublicDecoderPool(t *testing.T) {
	c, err := BBCode(0)
	if err != nil {
		t.Fatal(err)
	}
	model := CodeCapacityNoise(c, 0.01)
	pool := NewDecoderPool(func() Decoder { return NewBP(model, 30) }, 2)
	d, err := pool.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	est, _ := d.Decode(NewVec(model.NumDet))
	// Pool-boundary rule: copy the decoder-owned result out before Release.
	kept := est.Clone()
	pool.Release(d)
	if !kept.IsZero() {
		t.Fatal("zero syndrome decoded to nonzero correction")
	}
	if pool.Created() != 1 {
		t.Fatalf("pool created %d decoders, want 1", pool.Created())
	}
}
