module vegapunk

go 1.22
