// Command decodeload is the load generator for vegapunkd: it samples
// errors from the same noise model the daemon serves, posts the
// syndromes in batches over concurrent connections, checks the
// predicted logical observables against the truth, and prints a
// reproducible per-run summary (QPS, latency percentiles, logical
// failure rate).
//
//	decodeload -addr http://127.0.0.1:8471 -code "BB [[72,12,6]]" \
//	    -decoder bp -p 0.001 -requests 200 -batch 8 -concurrency 4 -seed 1
//
// Every sampled error is derived from (-seed, request index), so a
// given flag set replays the identical workload regardless of
// concurrency — future perf PRs can track the same benchmark.
//
// Failed requests are reported in separate terminal classes —
// rejected_503 (saturation / circuit breaker), timeouts_504 (deadline
// exceeded or budget shed), decoder_faults (5xx from a quarantined
// decoder) and transport_errors (no daemon response at all). With
// -chaos the run targets a `vegapunkd -chaos` daemon and succeeds as
// long as every request reached a terminal outcome and at least one
// decoded: rejections, sheds and faults are then the resilience
// machinery working, not a failed run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vegapunk/internal/exp"
	"vegapunk/internal/gf2"
	"vegapunk/internal/serve"
)

type decodeRequest struct {
	Model     string   `json:"model"`
	Syndromes []string `json:"syndromes"`
}

type decodeResult struct {
	Observables string `json:"observables"`
	Satisfied   bool   `json:"satisfied"`
	// DegradedTier is set when the daemon decoded this syndrome below
	// full quality under its degradation ladder.
	DegradedTier string `json:"degraded_tier"`
	// Server-side per-stage breakdown (nanoseconds), reported by the
	// daemon per syndrome.
	QueueWaitNs int64 `json:"queue_wait_ns"`
	DecodeNs    int64 `json:"decode_ns"`
	CopyOutNs   int64 `json:"copy_out_ns"`
}

type decodeResponse struct {
	Results []decodeResult `json:"results"`
}

// workItem is one pre-generated HTTP request with its ground truth.
type workItem struct {
	body   []byte
	actual []string // true observable flips per syndrome
}

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("decodeload", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8471", "daemon base URL")
	codeName := fs.String("code", "BB [[72,12,6]]", "benchmark code name (must match the daemon)")
	p := fs.Float64("p", 0.001, "physical error rate (must match the daemon)")
	decoder := fs.String("decoder", "bp", "decoder flag name used at the daemon (derives the model key)")
	modelKey := fs.String("model", "", "explicit model key (overrides -code/-decoder/-p derivation)")
	requests := fs.Int("requests", 200, "number of HTTP requests to send")
	batchSize := fs.Int("batch", 8, "syndromes per request")
	concurrency := fs.Int("concurrency", 4, "concurrent client connections")
	seed := fs.Uint64("seed", 1, "reproducible workload seed")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request client timeout")
	chaosMode := fs.Bool("chaos", false, "resilience run against a -chaos daemon: individual request failures are expected; exit 0 iff every request reached a terminal outcome and at least one succeeded")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}

	logger := log.New(os.Stderr, "decodeload ", log.LstdFlags)

	b, ok := findBenchmark(*codeName)
	if !ok {
		logger.Printf("unknown code %q", *codeName)
		return 2
	}
	model, err := exp.NewWorkspace().Model(b, *p)
	if err != nil {
		logger.Printf("build model: %v", err)
		return 1
	}
	key := *modelKey
	if key == "" {
		key = serve.ModelKey(b.Name, *decoder, *p)
	}

	// Pre-generate the whole workload so concurrency cannot change what
	// is sampled: request i always carries the same syndromes.
	items := make([]workItem, *requests)
	e := gf2.NewVec(model.NumMech())
	for i := range items {
		rng := rand.New(rand.NewPCG(*seed, uint64(i)))
		req := decodeRequest{Model: key, Syndromes: make([]string, *batchSize)}
		items[i].actual = make([]string, *batchSize)
		for j := 0; j < *batchSize; j++ {
			model.SampleInto(e, rng)
			req.Syndromes[j] = model.Syndrome(e).String()
			items[i].actual[j] = model.Observables(e).String()
		}
		body, err := json.Marshal(req)
		if err != nil {
			logger.Printf("marshal: %v", err)
			return 1
		}
		items[i].body = body
	}

	client := &http.Client{Timeout: *timeout}
	var (
		next      atomic.Int64
		mu        sync.Mutex
		latencies []time.Duration
		failures  int
		syndromes int
		degraded  int // syndromes the daemon decoded below full tier
		// Terminal failure classes. Every request lands in exactly one of
		// ok (latencies), rejected503, timeout504, decoderFault5xx or
		// transportErrs — the split tells a resilience run apart from an
		// outage (a 503 storm is the breaker working; transport errors
		// mean the daemon is gone).
		rejected503     int // capacity saturated, breaker open, draining
		timeout504      int // server-side deadline exceeded or budget shed
		decoderFault5xx int // decoder fault surfaced as 5xx (quarantine path)
		transportErrs   int // client timeout, connection or parse failure
		// Server-reported per-stage sums (ns) across all syndromes.
		queueWaitNs, decodeNs, copyOutNs int64
		wg                               sync.WaitGroup
	)
	t0 := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(len(items)) {
					return
				}
				item := &items[i]
				start := time.Now()
				resp, err := client.Post(*addr+"/v1/decode", "application/json", bytes.NewReader(item.body))
				lat := time.Since(start)
				var out decodeResponse
				status := 0
				bad := false
				if err != nil {
					bad = true
				} else {
					status = resp.StatusCode
					raw, rerr := io.ReadAll(resp.Body)
					cerr := resp.Body.Close()
					if rerr != nil || cerr != nil || status != http.StatusOK || json.Unmarshal(raw, &out) != nil {
						bad = true
					}
				}
				mu.Lock()
				switch {
				case !bad:
					latencies = append(latencies, lat)
					for j, res := range out.Results {
						syndromes++
						queueWaitNs += res.QueueWaitNs
						decodeNs += res.DecodeNs
						copyOutNs += res.CopyOutNs
						if res.DegradedTier != "" {
							degraded++
						}
						if j < len(item.actual) && res.Observables != item.actual[j] {
							failures++
						}
					}
				case status == http.StatusServiceUnavailable:
					rejected503++
				case status == http.StatusGatewayTimeout:
					timeout504++
				case status >= 500:
					decoderFault5xx++
				default:
					transportErrs++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)

	httpErrs := rejected503 + timeout504 + decoderFault5xx + transportErrs
	if len(latencies) == 0 {
		logger.Printf("no successful requests (rejected_503=%d timeouts_504=%d decoder_faults=%d transport_errors=%d); is vegapunkd up at %s with model %s?",
			rejected503, timeout504, decoderFault5xx, transportErrs, *addr, key)
		return 1
	}
	// Nearest-rank percentiles over the full sorted sample set: the
	// q-quantile is the smallest sample with at least ceil(q*n) samples
	// at or below it (so p99 of 200 samples is sample 198, not an
	// index truncated toward the median).
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(q float64) time.Duration {
		idx := int(math.Ceil(q*float64(len(latencies)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(latencies) {
			idx = len(latencies) - 1
		}
		return latencies[idx]
	}
	qps := float64(len(latencies)) / elapsed.Seconds()
	sps := float64(syndromes) / elapsed.Seconds()
	failRate := float64(failures) / float64(max(syndromes, 1))
	perSyn := func(sum int64) time.Duration {
		return time.Duration(sum / int64(max(syndromes, 1))).Round(time.Microsecond)
	}

	// The one-line summary is the trackable serving benchmark: keep the
	// field set stable across PRs.
	fmt.Printf("decodeload: model=%s seed=%d requests=%d batch=%d concurrency=%d "+
		"ok=%d http_errors=%d syndromes=%d elapsed=%s qps=%.1f syndromes_per_sec=%.1f "+
		"p50=%s p99=%s max=%s logical_failures=%d failure_rate=%.3g\n",
		key, *seed, *requests, *batchSize, *concurrency,
		len(latencies), httpErrs, syndromes, elapsed.Round(time.Millisecond), qps, sps,
		pct(0.50), pct(0.99), latencies[len(latencies)-1], failures, failRate)
	// Failure-class breakdown: how the daemon's resilience machinery
	// resolved the requests that did not decode at full quality.
	fmt.Printf("decodeload: classes rejected_503=%d timeouts_504=%d decoder_faults=%d transport_errors=%d degraded_syndromes=%d\n",
		rejected503, timeout504, decoderFault5xx, transportErrs, degraded)
	// Server-side stage breakdown (mean per syndrome): where the latency
	// budget actually goes — waiting in the micro-batch queue, the
	// decoder call, or the pool-boundary copy-out.
	fmt.Printf("decodeload: stages queue_wait_mean=%s decode_mean=%s copy_out_mean=%s\n",
		perSyn(queueWaitNs), perSyn(decodeNs), perSyn(copyOutNs))
	if *chaosMode {
		// Chaos contract: shed, rejected and faulted requests are the
		// resilience machinery doing its job; the run only fails if the
		// daemon itself became unreachable or nothing at all succeeded
		// (len(latencies) == 0 already returned above).
		if transportErrs > 0 {
			logger.Printf("chaos run saw %d transport errors: requests without a terminal daemon response", transportErrs)
			return 1
		}
		return 0
	}
	if httpErrs > 0 {
		return 1
	}
	return 0
}

func findBenchmark(name string) (exp.Benchmark, bool) {
	for _, b := range exp.Benchmarks() {
		if b.Name == name {
			return b, true
		}
	}
	return exp.Benchmark{}, false
}
