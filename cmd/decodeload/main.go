// Command decodeload is the load generator for vegapunkd: it samples
// errors from the same noise model the daemon serves, sends the
// syndromes in batches over concurrent connections, checks the
// predicted logical observables against the truth, and prints a
// reproducible per-run summary (QPS, latency percentiles, logical
// failure rate).
//
//	decodeload -addr http://127.0.0.1:8471 -code "BB [[72,12,6]]" \
//	    -decoder bp -p 0.001 -requests 200 -batch 8 -concurrency 4 -seed 1
//
// With -proto binary the same workload runs over the binary wire
// protocol (vegapunkd -listen-wire) instead of JSON HTTP: -addr is then
// a host:port, each request is one pipelined frame batch on a
// persistent connection. With -router the target is a vegapunkrouter
// front end (implies -proto binary) and the summary additionally counts
// responses the router retried on a sibling replica.
//
//	decodeload -proto binary -addr 127.0.0.1:8473 ...
//	decodeload -router 127.0.0.1:9471 ...
//
// Every sampled error is derived from (-seed, request index), so a
// given flag set replays the identical workload regardless of
// concurrency — future perf PRs can track the same benchmark.
//
// Failed requests are reported in separate terminal classes —
// rejected_503 (saturation / circuit breaker / overload), timeouts_504
// (deadline exceeded or budget shed), decoder_faults (quarantined
// decoder or internal error) and transport_errors (no daemon response
// at all). The wire statuses map onto the same classes: Overload →
// rejected_503, Shed/Timeout → timeouts_504, DecoderFault/Internal →
// decoder_faults. With -chaos the run targets a `vegapunkd -chaos`
// daemon and succeeds as long as every request reached a terminal
// outcome and at least one decoded: rejections, sheds and faults are
// then the resilience machinery working, not a failed run.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vegapunk/internal/exp"
	"vegapunk/internal/gf2"
	"vegapunk/internal/serve"
	"vegapunk/internal/wire"
)

type decodeRequest struct {
	Model     string   `json:"model"`
	Syndromes []string `json:"syndromes"`
}

type decodeResult struct {
	Observables string `json:"observables"`
	Satisfied   bool   `json:"satisfied"`
	// DegradedTier is set when the daemon decoded this syndrome below
	// full quality under its degradation ladder.
	DegradedTier string `json:"degraded_tier"`
	// Server-side per-stage breakdown (nanoseconds), reported by the
	// daemon per syndrome.
	QueueWaitNs int64 `json:"queue_wait_ns"`
	DecodeNs    int64 `json:"decode_ns"`
	CopyOutNs   int64 `json:"copy_out_ns"`
}

type decodeResponse struct {
	Results []decodeResult `json:"results"`
}

// workItem is one pre-generated request with its ground truth: the JSON
// body for -proto json, the raw syndromes for -proto binary.
type workItem struct {
	body   []byte
	syns   []gf2.Vec
	actual []string // true observable flips per syndrome
}

// tally aggregates terminal outcomes across workers. Every request
// lands in exactly one of ok (latencies), rejected503, timeout504,
// decoderFault or transportErrs — the split tells a resilience run
// apart from an outage (a rejection storm is the breaker working;
// transport errors mean the daemon is gone).
type tally struct {
	mu        sync.Mutex
	latencies []time.Duration
	failures  int
	syndromes int
	degraded  int // syndromes decoded below full tier
	retried   int // responses the router re-sent to a sibling replica
	// reconnects counts wire connections re-established after transport
	// loss (binary proto only; jittered exponential backoff per worker).
	reconnects int

	rejected503   int // capacity saturated, breaker open, overload
	timeout504    int // server-side deadline exceeded or budget shed
	decoderFault  int // quarantined decoder or internal server error
	transportErrs int // client timeout, connection or parse failure

	// Server-reported per-stage sums (ns) across all syndromes.
	queueWaitNs, decodeNs, copyOutNs int64

	// Network-vs-server split (binary proto only, from the wire
	// telemetry extension): per ok request, the replica-resident time is
	// the largest lane's reported queue+decode+copy-out span (lanes of
	// one pipelined batch decode together, so their spans overlap and
	// must not be summed); the remainder of the client wall clock is
	// transport + router relay.
	netNs, serverNs int64
	timedReqs       int
}

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("decodeload", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8471", "daemon base URL (json) or host:port (binary)")
	proto := fs.String("proto", "json", "request protocol: json (HTTP /v1/decode) or binary (wire frames)")
	router := fs.String("router", "", "vegapunkrouter wire address to load instead of a single daemon (implies -proto binary)")
	codeName := fs.String("code", "BB [[72,12,6]]", "benchmark code name (must match the daemon)")
	p := fs.Float64("p", 0.001, "physical error rate (must match the daemon)")
	decoder := fs.String("decoder", "bp", "decoder flag name used at the daemon (derives the model key)")
	modelKey := fs.String("model", "", "explicit model key (overrides -code/-decoder/-p derivation)")
	requests := fs.Int("requests", 200, "number of requests to send")
	batchSize := fs.Int("batch", 8, "syndromes per request")
	concurrency := fs.Int("concurrency", 4, "concurrent client connections")
	seed := fs.Uint64("seed", 1, "reproducible workload seed")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request client timeout")
	traceSample := fs.Uint64("trace-sample", 0, "binary proto: mark one in N requests trace-sampled so the daemon/router record their spans (0 = timing blocks only, no sampling)")
	chaosMode := fs.Bool("chaos", false, "resilience run against a -chaos daemon: individual request failures are expected; exit 0 iff every request reached a terminal outcome and at least one succeeded")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}

	logger := log.New(os.Stderr, "decodeload ", log.LstdFlags)

	target := *addr
	if *router != "" {
		target = *router
		*proto = "binary"
	}
	if *proto != "json" && *proto != "binary" {
		logger.Printf("unknown -proto %q (want json or binary)", *proto)
		return 2
	}

	b, ok := findBenchmark(*codeName)
	if !ok {
		logger.Printf("unknown code %q", *codeName)
		return 2
	}
	model, err := exp.NewWorkspace().Model(b, *p)
	if err != nil {
		logger.Printf("build model: %v", err)
		return 1
	}
	key := *modelKey
	if key == "" {
		key = serve.ModelKey(b.Name, *decoder, *p)
	}

	// Pre-generate the whole workload so concurrency cannot change what
	// is sampled: request i always carries the same syndromes.
	items := make([]workItem, *requests)
	e := gf2.NewVec(model.NumMech())
	for i := range items {
		rng := rand.New(rand.NewPCG(*seed, uint64(i)))
		req := decodeRequest{Model: key, Syndromes: make([]string, *batchSize)}
		items[i].syns = make([]gf2.Vec, *batchSize)
		items[i].actual = make([]string, *batchSize)
		for j := 0; j < *batchSize; j++ {
			model.SampleInto(e, rng)
			syn := model.Syndrome(e)
			items[i].syns[j] = syn
			req.Syndromes[j] = syn.String()
			items[i].actual[j] = model.Observables(e).String()
		}
		body, err := json.Marshal(req)
		if err != nil {
			logger.Printf("marshal: %v", err)
			return 1
		}
		items[i].body = body
	}

	var (
		tl   tally
		next atomic.Int64
		wg   sync.WaitGroup
	)
	t0 := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if *proto == "binary" {
				binaryWorker(&tl, &next, items, target, key, *timeout, *traceSample, *seed+uint64(w), logger)
			} else {
				jsonWorker(&tl, &next, items, target, *timeout)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)

	reqErrs := tl.rejected503 + tl.timeout504 + tl.decoderFault + tl.transportErrs
	if len(tl.latencies) == 0 {
		logger.Printf("no successful requests (rejected_503=%d timeouts_504=%d decoder_faults=%d transport_errors=%d); is the daemon up at %s with model %s?",
			tl.rejected503, tl.timeout504, tl.decoderFault, tl.transportErrs, target, key)
		return 1
	}
	// Nearest-rank percentiles over the full sorted sample set: the
	// q-quantile is the smallest sample with at least ceil(q*n) samples
	// at or below it (so p99 of 200 samples is sample 198, not an
	// index truncated toward the median).
	sort.Slice(tl.latencies, func(i, j int) bool { return tl.latencies[i] < tl.latencies[j] })
	pct := func(q float64) time.Duration {
		idx := int(math.Ceil(q*float64(len(tl.latencies)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(tl.latencies) {
			idx = len(tl.latencies) - 1
		}
		return tl.latencies[idx]
	}
	qps := float64(len(tl.latencies)) / elapsed.Seconds()
	sps := float64(tl.syndromes) / elapsed.Seconds()
	failRate := float64(tl.failures) / float64(max(tl.syndromes, 1))
	perSyn := func(sum int64) time.Duration {
		return time.Duration(sum / int64(max(tl.syndromes, 1))).Round(time.Microsecond)
	}

	// The one-line summary is the trackable serving benchmark: keep the
	// field set stable across PRs.
	fmt.Printf("decodeload: model=%s proto=%s seed=%d requests=%d batch=%d concurrency=%d "+
		"ok=%d http_errors=%d syndromes=%d elapsed=%s qps=%.1f syndromes_per_sec=%.1f "+
		"p50=%s p99=%s max=%s logical_failures=%d failure_rate=%.3g\n",
		key, *proto, *seed, *requests, *batchSize, *concurrency,
		len(tl.latencies), reqErrs, tl.syndromes, elapsed.Round(time.Millisecond), qps, sps,
		pct(0.50), pct(0.99), tl.latencies[len(tl.latencies)-1], tl.failures, failRate)
	// Failure-class breakdown: how the daemon's resilience machinery
	// resolved the requests that did not decode at full quality.
	fmt.Printf("decodeload: classes rejected_503=%d timeouts_504=%d decoder_faults=%d transport_errors=%d degraded_syndromes=%d retried=%d reconnects=%d\n",
		tl.rejected503, tl.timeout504, tl.decoderFault, tl.transportErrs, tl.degraded, tl.retried, tl.reconnects)
	// Server-side stage breakdown (mean per syndrome): where the latency
	// budget actually goes — waiting in the micro-batch queue, the
	// decoder call, or the pool-boundary copy-out.
	fmt.Printf("decodeload: stages queue_wait_mean=%s decode_mean=%s copy_out_mean=%s\n",
		perSyn(tl.queueWaitNs), perSyn(tl.decodeNs), perSyn(tl.copyOutNs))
	// Network-vs-server split (binary proto only): server_mean is the
	// replica-reported resident time per ok request from the wire
	// telemetry blocks; network_mean is the rest of the client wall
	// clock (transport plus router relay).
	if tl.timedReqs > 0 {
		perReq := func(sum int64) time.Duration {
			return time.Duration(sum / int64(tl.timedReqs)).Round(time.Microsecond)
		}
		fmt.Printf("decodeload: split network_mean=%s server_mean=%s timed_requests=%d\n",
			perReq(tl.netNs), perReq(tl.serverNs), tl.timedReqs)
	}
	if *chaosMode {
		// Chaos contract: shed, rejected and faulted requests are the
		// resilience machinery doing its job; the run only fails if the
		// daemon itself became unreachable or nothing at all succeeded
		// (len(latencies) == 0 already returned above).
		if tl.transportErrs > 0 {
			logger.Printf("chaos run saw %d transport errors: requests without a terminal daemon response", tl.transportErrs)
			return 1
		}
		return 0
	}
	if reqErrs > 0 {
		return 1
	}
	return 0
}

// jsonWorker drains items over HTTP POST /v1/decode.
func jsonWorker(tl *tally, next *atomic.Int64, items []workItem, addr string, timeout time.Duration) {
	client := &http.Client{Timeout: timeout}
	for {
		i := next.Add(1) - 1
		if i >= int64(len(items)) {
			return
		}
		item := &items[i]
		start := time.Now()
		resp, err := client.Post(addr+"/v1/decode", "application/json", bytes.NewReader(item.body))
		lat := time.Since(start)
		var out decodeResponse
		status := 0
		bad := false
		if err != nil {
			bad = true
		} else {
			status = resp.StatusCode
			raw, rerr := io.ReadAll(resp.Body)
			cerr := resp.Body.Close()
			if rerr != nil || cerr != nil || status != http.StatusOK || json.Unmarshal(raw, &out) != nil {
				bad = true
			}
		}
		tl.mu.Lock()
		switch {
		case !bad:
			tl.latencies = append(tl.latencies, lat)
			for j, res := range out.Results {
				tl.syndromes++
				tl.queueWaitNs += res.QueueWaitNs
				tl.decodeNs += res.DecodeNs
				tl.copyOutNs += res.CopyOutNs
				if res.DegradedTier != "" {
					tl.degraded++
				}
				if j < len(item.actual) && res.Observables != item.actual[j] {
					tl.failures++
				}
			}
		case status == http.StatusServiceUnavailable:
			tl.rejected503++
		case status == http.StatusGatewayTimeout:
			tl.timeout504++
		case status >= 500:
			tl.decoderFault++
		default:
			tl.transportErrs++
		}
		tl.mu.Unlock()
	}
}

// binaryWorker drains items over one persistent wire connection: each
// request is a pipelined frame batch. A request counts as ok only when
// every lane in the batch decoded; otherwise it lands in the class of
// its first failed lane (Overload → rejected_503, Shed/Timeout →
// timeouts_504, DecoderFault/Internal → decoder_faults). On transport
// loss the worker reconnects once per item before failing it, through
// a per-worker wire.Redialer — capped exponential backoff with
// deterministic jitter, so workers hammered off a flapping daemon do
// not redial in lockstep.
func binaryWorker(tl *tally, next *atomic.Int64, items []workItem, addr, key string, timeout time.Duration, traceSample, workerSeed uint64, logger *log.Logger) {
	addr = strings.TrimPrefix(strings.TrimPrefix(addr, "http://"), "https://")
	var (
		c    *wire.Client
		info wire.ModelInfo
		res  wire.Result
	)
	rd := &wire.Redialer{
		Addr:        addr,
		DialTimeout: 2 * time.Second,
		IOTimeout:   timeout,
		BackoffMin:  25 * time.Millisecond,
		BackoffMax:  time.Second,
		Seed:        workerSeed,
	}
	dialed := 0
	connect := func() error {
		var err error
		c, err = rd.Dial()
		if err != nil {
			c = nil
			return err
		}
		dialed++
		if dialed > 1 {
			tl.mu.Lock()
			tl.reconnects++
			tl.mu.Unlock()
		}
		info, err = c.Hello(key)
		if err != nil {
			logger.Printf("hello %s: %v", key, err)
			_ = c.Close() // best-effort: failed handshake
			c = nil
			return err
		}
		wire.SizeResult(&res, info.NumMech, info.NumObs)
		return nil
	}
	defer func() {
		if c != nil {
			_ = c.Close() // best-effort: load run is over
		}
	}()

	for {
		i := next.Add(1) - 1
		if i >= int64(len(items)) {
			return
		}
		item := &items[i]
		if c == nil {
			if err := connect(); err != nil {
				// A status refusal of the handshake (e.g. a router
				// answering overload while its whole replica set is down)
				// is a terminal daemon response, not transport loss:
				// classify it like the matching decode status so chaos
				// runs do not mistake rejection for an unreachable tier.
				var se *wire.StatusError
				tl.mu.Lock()
				switch {
				case !errors.As(err, &se):
					tl.transportErrs++
				case se.Status == wire.StatusOverload:
					tl.rejected503++
				case se.Status == wire.StatusShed || se.Status == wire.StatusTimeout:
					tl.timeout504++
				default:
					tl.decoderFault++
				}
				tl.mu.Unlock()
				continue
			}
		}

		// Every request carries a telemetry block (so the server reports
		// timings back); the sampled bit — which makes the daemon and
		// router record spans — is set on one in -trace-sample requests.
		sampled := traceSample > 0 && uint64(i)%traceSample == 0
		start := time.Now()
		for j, syn := range item.syns {
			reqID := uint64(i)<<16 | uint64(j)
			c.QueueDecodeTraced(info.ID, reqID, syn,
				wire.TraceContext{TraceID: reqID + 1, Sampled: sampled})
		}
		type laneOut struct {
			status      wire.Status
			flags       wire.Flags
			tier        uint8
			match       bool
			timed       bool
			queueWaitNs int64
			decodeNs    int64
			copyOutNs   int64
			serverNs    int64
		}
		lanes := make([]laneOut, 0, len(item.syns))
		var terr error
		transport := false
		if err := c.Flush(); err != nil {
			transport, terr = true, err
		}
		if !transport {
			var tm wire.ServerTiming
			for j := range item.syns {
				h, timed, err := c.ReadResultTimed(&res, &tm)
				if err != nil {
					transport, terr = true, err
					break
				}
				if want := uint64(i)<<16 | uint64(j); h.ReqID != want {
					transport, terr = true, fmt.Errorf("response for request %#x, want %#x", h.ReqID, want)
					break
				}
				lo := laneOut{status: res.Status, flags: h.Flags, tier: res.Tier,
					queueWaitNs: res.QueueWaitNs, decodeNs: res.DecodeNs, copyOutNs: res.CopyOutNs}
				if timed {
					lo.timed = true
					lo.serverNs = tm.ServerNs()
				}
				if res.Status == wire.StatusOK {
					lo.match = res.Observables.String() == item.actual[j]
				}
				lanes = append(lanes, lo)
			}
		}
		lat := time.Since(start)
		if transport {
			// The connection is in an unknown state: drop it and
			// reconnect for the next item.
			logger.Printf("request %d: transport failure: %v", i, terr)
			_ = c.Close() // best-effort: already failed
			c = nil
		}

		tl.mu.Lock()
		firstBad := wire.StatusOK
		for _, lo := range lanes {
			if lo.flags&wire.FlagRetried != 0 {
				tl.retried++
			}
			if lo.status != wire.StatusOK && firstBad == wire.StatusOK {
				firstBad = lo.status
			}
		}
		switch {
		case transport:
			tl.transportErrs++
		case firstBad == wire.StatusOK:
			tl.latencies = append(tl.latencies, lat)
			serverReqNs, anyTimed := int64(0), false
			for _, lo := range lanes {
				tl.syndromes++
				tl.queueWaitNs += lo.queueWaitNs
				tl.decodeNs += lo.decodeNs
				tl.copyOutNs += lo.copyOutNs
				if lo.timed {
					anyTimed = true
					if s := lo.serverNs; s > serverReqNs {
						serverReqNs = s
					}
				}
				if lo.tier > 0 {
					tl.degraded++
				}
				if !lo.match {
					tl.failures++
				}
			}
			if anyTimed {
				tl.timedReqs++
				tl.serverNs += serverReqNs
				if net := lat.Nanoseconds() - serverReqNs; net > 0 {
					tl.netNs += net
				}
			}
		case firstBad == wire.StatusOverload:
			tl.rejected503++
		case firstBad == wire.StatusShed || firstBad == wire.StatusTimeout:
			tl.timeout504++
		default:
			// DecoderFault, Internal, BadRequest, UnknownModel, …: the
			// daemon answered terminally, so whatever the status, this is
			// a server-side error, never transport loss — transport_errors
			// is reserved for requests with no terminal response at all.
			tl.decoderFault++
		}
		tl.mu.Unlock()
	}
}

func findBenchmark(name string) (exp.Benchmark, bool) {
	for _, b := range exp.Benchmarks() {
		if b.Name == name {
			return b, true
		}
	}
	return exp.Benchmark{}, false
}
