package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeBench drops one BENCH_<n>.json with the given raw contents.
func writeBench(t *testing.T, dir string, n int, contents string) {
	t.Helper()
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
	if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
		t.Fatal(err)
	}
}

const baseline = `{
	"issue": 1,
	"benchmarks": [
		{"pkg": "vegapunk/internal/gf2", "name": "BenchmarkMatVec", "ns_per_op": 100, "allocs_per_op": 0}
	],
	"serve_load": {"qps": 1000}
}`

// TestCompareTruncatedArtifact pins the failure mode this rule exists
// for: a newest artifact cut off mid-write must fail the comparison
// loudly (exit 2), never silently pass it.
func TestCompareTruncatedArtifact(t *testing.T) {
	dir := t.TempDir()
	writeBench(t, dir, 1, baseline)
	// Truncated mid-object: invalid JSON.
	writeBench(t, dir, 2, baseline[:len(baseline)/2])
	if got := runCompare(dir, 0.10); got != 2 {
		t.Errorf("runCompare with truncated newest artifact = %d, want 2", got)
	}
}

// TestCompareEmptyArtifact covers truncation that still parses: a
// valid JSON object with no benchmarks compares nothing and must fail.
func TestCompareEmptyArtifact(t *testing.T) {
	dir := t.TempDir()
	writeBench(t, dir, 1, baseline)
	writeBench(t, dir, 2, `{"issue": 2}`)
	if got := runCompare(dir, 0.10); got != 2 {
		t.Errorf("runCompare with empty newest artifact = %d, want 2", got)
	}
}

// TestCompareNoOverlap: benchmarks present on both sides but none
// shared means nothing was compared — also a hard failure.
func TestCompareNoOverlap(t *testing.T) {
	dir := t.TempDir()
	writeBench(t, dir, 1, baseline)
	writeBench(t, dir, 2, `{
		"issue": 2,
		"benchmarks": [
			{"pkg": "vegapunk/internal/gf2", "name": "BenchmarkRenamed", "ns_per_op": 100, "allocs_per_op": 0}
		],
		"serve_load": {"qps": 1000}
	}`)
	if got := runCompare(dir, 0.10); got != 2 {
		t.Errorf("runCompare with zero benchmark overlap = %d, want 2", got)
	}
}

// TestCompareVerdicts covers the two healthy outcomes: a within-
// tolerance artifact passes, a regressed one exits 1.
func TestCompareVerdicts(t *testing.T) {
	dir := t.TempDir()
	writeBench(t, dir, 1, baseline)
	writeBench(t, dir, 2, `{
		"issue": 2,
		"benchmarks": [
			{"pkg": "vegapunk/internal/gf2", "name": "BenchmarkMatVec", "ns_per_op": 105, "allocs_per_op": 0}
		],
		"serve_load": {"qps": 990}
	}`)
	if got := runCompare(dir, 0.10); got != 0 {
		t.Errorf("runCompare within tolerance = %d, want 0", got)
	}
	writeBench(t, dir, 3, `{
		"issue": 3,
		"benchmarks": [
			{"pkg": "vegapunk/internal/gf2", "name": "BenchmarkMatVec", "ns_per_op": 150, "allocs_per_op": 0}
		],
		"serve_load": {"qps": 990}
	}`)
	if got := runCompare(dir, 0.10); got != 1 {
		t.Errorf("runCompare with 50%% ns/op regression = %d, want 1", got)
	}
}

// TestCompareSingleArtifact: the first trajectory point has no
// baseline and passes by design.
func TestCompareSingleArtifact(t *testing.T) {
	dir := t.TempDir()
	writeBench(t, dir, 1, baseline)
	if got := runCompare(dir, 0.10); got != 0 {
		t.Errorf("runCompare with one artifact = %d, want 0", got)
	}
}
