// Command benchjson records one point of the repo's performance
// trajectory (ROADMAP item 5): it runs the pinned hot-path benchmark
// set under `go test -bench`, drives an in-process serving load for
// QPS and latency percentiles, and writes the result as a BENCH_<n>.json
// artifact meant to be checked in with the PR that produced it.
//
//	go run ./cmd/benchjson -issue 6            # writes BENCH_6.json
//	go run ./cmd/benchjson -compare            # newest two artifacts, fail on regression
//
// With -compare it instead loads the two newest BENCH_*.json artifacts
// (by issue number) and exits 1 if any shared pinned benchmark got more
// than -tolerance slower (ns/op), gained allocations, or the serving
// load lost more than -tolerance QPS. With fewer than two artifacts it
// exits 0 silently — the first PR of the trajectory has nothing to
// compare against.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"time"

	"vegapunk/internal/cluster"
	"vegapunk/internal/code"
	"vegapunk/internal/core"
	"vegapunk/internal/dem"
	"vegapunk/internal/gf2"
	"vegapunk/internal/netfault"
	"vegapunk/internal/serve"
	"vegapunk/internal/wire"
)

// pins is the benchmark set the artifact records: the per-family decode
// kernels, their batched counterparts, and the serving hot path with
// its serial-dispatch ablation.
var pins = []struct {
	bench string
	pkg   string
}{
	{"BenchmarkBPDecode$", "./internal/bp"},
	{"BenchmarkBPDecodeBatch64$", "./internal/bp"},
	{"BenchmarkHierDecode$", "./internal/hier"},
	{"BenchmarkHierDecodeBatch64$", "./internal/hier"},
	{"BenchmarkOSDDecode$", "./internal/osd"},
	{"BenchmarkServiceDecode$", "./internal/serve"},
	{"BenchmarkServiceDecodeBatch64$", "./internal/serve"},
	{"BenchmarkServiceDecodeBatch64Serial$", "./internal/serve"},
	{"BenchmarkWireAppendDecode$", "./internal/wire"},
	{"BenchmarkWireAppendDecodeTraced$", "./internal/wire"},
	{"BenchmarkWireParseResult$", "./internal/wire"},
	{"BenchmarkWireParseResultTimed$", "./internal/wire"},
	{"BenchmarkRouterPick$", "./internal/cluster"},
}

// benchResult is one pinned benchmark measurement.
type benchResult struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// serveLoad summarizes the in-process serving run.
type serveLoad struct {
	Model    string  `json:"model"`
	Decoder  string  `json:"decoder"`
	Requests int     `json:"requests"`
	Batch    int     `json:"batch"`
	Clients  int     `json:"clients"`
	QPS      float64 `json:"qps"`
	P50Ns    int64   `json:"p50_ns"`
	P99Ns    int64   `json:"p99_ns"`
}

// protoLoad is one protocol-comparison measurement: the same workload
// driven over real loopback sockets through one of the serving paths —
// JSON HTTP direct, binary wire direct, or binary wire via a
// vegapunkrouter front end. Latencies are client-observed round trips,
// so the rows are directly comparable.
type protoLoad struct {
	Proto    string  `json:"proto"` // "json-http", "binary", "binary-router", "router-slowlink[-hedged]", ...
	Requests int     `json:"requests"`
	Batch    int     `json:"batch"`
	Clients  int     `json:"clients"`
	QPS      float64 `json:"qps"`
	P50Ns    int64   `json:"p50_ns"`
	P99Ns    int64   `json:"p99_ns"`
}

// artifact is the BENCH_<n>.json schema.
type artifact struct {
	Issue      int           `json:"issue"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Benchmarks []benchResult `json:"benchmarks"`
	ServeLoad  serveLoad     `json:"serve_load"`
	ProtoLoads []protoLoad   `json:"proto_loads,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op\s+[\d.]+ B/op\s+([\d.]+) allocs/op`)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	issue := fs.Int("issue", 6, "issue number the artifact belongs to (BENCH_<n>.json)")
	dir := fs.String("dir", ".", "directory holding BENCH_*.json artifacts")
	compare := fs.Bool("compare", false, "compare the two newest artifacts instead of measuring")
	tolerance := fs.Float64("tolerance", 0.10, "allowed fractional regression before -compare fails")
	benchtime := fs.String("benchtime", "1s", "go test -benchtime for the pinned set")
	requests := fs.Int("requests", 4096, "serving-load request count")
	batch := fs.Int("batch", 64, "serving-load client batch size")
	clients := fs.Int("clients", 4, "serving-load concurrent clients")
	protoRequests := fs.Int("proto-requests", 1024, "protocol-comparison request count per path")
	protoBatch := fs.Int("proto-batch", 8, "protocol-comparison syndromes per request")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *compare {
		return runCompare(*dir, *tolerance)
	}
	return runMeasure(*dir, *issue, *benchtime, *requests, *batch, *clients, *protoRequests, *protoBatch)
}

func runMeasure(dir string, issue int, benchtime string, requests, batch, clients, protoRequests, protoBatch int) int {
	art := artifact{
		Issue:     issue,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, p := range pins {
		fmt.Fprintf(os.Stderr, "bench %s %s\n", p.pkg, p.bench)
		res, err := runBench(p.pkg, p.bench, benchtime)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s %s: %v\n", p.pkg, p.bench, err)
			return 2
		}
		art.Benchmarks = append(art.Benchmarks, res)
	}
	fmt.Fprintf(os.Stderr, "serve load: %d requests, batch %d, %d clients\n", requests, batch, clients)
	load, err := runServeLoad(requests, batch, clients)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: serve load: %v\n", err)
		return 2
	}
	art.ServeLoad = load
	fmt.Fprintf(os.Stderr, "proto loads: %d requests, batch %d, %d clients per path\n",
		protoRequests, protoBatch, clients)
	protoLoads, err := runProtoLoads(protoRequests, protoBatch, clients)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: proto loads: %v\n", err)
		return 2
	}
	art.ProtoLoads = protoLoads
	if j, b := protoByName(protoLoads, "json-http"), protoByName(protoLoads, "binary"); j != nil && b != nil {
		fmt.Fprintf(os.Stderr, "binary vs json-http at equal load: %.2fx QPS, %.2fx p99\n",
			b.QPS/j.QPS, float64(j.P99Ns)/float64(max64(b.P99Ns, 1)))
	}
	if b, tel := protoByName(protoLoads, "binary"), protoByName(protoLoads, "binary-telemetry"); b != nil && tel != nil {
		fmt.Fprintf(os.Stderr, "telemetry cost on the binary path: %.2f%% QPS\n",
			100*(1-tel.QPS/b.QPS))
	}
	fmt.Fprintf(os.Stderr, "slow-link loads: hedged vs unhedged router over a netfault proxy\n")
	slowLoads, err := runSlowLinkLoads(protoBatch)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: slow-link loads: %v\n", err)
		return 2
	}
	art.ProtoLoads = append(art.ProtoLoads, slowLoads...)
	if off, on := protoByName(slowLoads, "router-slowlink"), protoByName(slowLoads, "router-slowlink-hedged"); off != nil && on != nil {
		fmt.Fprintf(os.Stderr, "hedged dispatch on a slow link: %.2fx p99, %.2fx QPS\n",
			float64(off.P99Ns)/float64(max64(on.P99Ns, 1)), on.QPS/off.QPS)
	}

	path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", issue))
	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	fmt.Printf("wrote %s (%d benchmarks, %.0f QPS)\n", path, len(art.Benchmarks), load.QPS)
	return 0
}

// runBench executes one pinned benchmark and parses its ns/op and
// allocs/op from the -benchmem output.
func runBench(pkg, bench, benchtime string) (benchResult, error) {
	cmd := exec.Command("go", "test", pkg, "-run", "^$", "-bench", bench,
		"-benchmem", "-benchtime", benchtime, "-count", "1")
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return benchResult{}, fmt.Errorf("go test: %w", err)
	}
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		allocs, _ := strconv.ParseFloat(m[3], 64)
		return benchResult{Name: m[1], Pkg: pkg, NsPerOp: ns, AllocsPerOp: allocs}, nil
	}
	return benchResult{}, fmt.Errorf("no benchmark line in output (renamed benchmark?)")
}

// runServeLoad drives the standard serving model (BB [[72,12,6]],
// code-capacity p=0.01, BP) in process: clients submit fixed-size
// batches through Service.DecodeBatchInto and the summary reports
// end-to-end QPS plus per-request server-side latency percentiles.
func runServeLoad(requests, batchSize, clients int) (serveLoad, error) {
	c, err := code.NewBBByIndex(0)
	if err != nil {
		return serveLoad{}, err
	}
	model := dem.CodeCapacity(c, 0.01)
	factory := func() core.Decoder { return core.NewBP(model, 30) }
	srv := serve.NewServer(serve.Config{MaxBatch: batchSize})
	key := serve.ModelKey(c.Name, "BP", 0.01)
	svc, err := srv.Register(key, model, "BP(30)", factory)
	if err != nil {
		return serveLoad{}, err
	}
	defer svc.Close()

	syndromes := sampleSyndromes(model, requests)
	perBatch := batchSize
	nBatches := (requests + perBatch - 1) / perBatch
	latencies := make([]int64, requests)
	ctx := context.Background()

	// Warm the pools so the measured run is steady state.
	warm := make([]serve.Result, perBatch)
	if err := svc.DecodeBatchInto(ctx, warm, syndromes[:perBatch]); err != nil {
		return serveLoad{}, err
	}

	start := time.Now()
	errs := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		//vegapunk:goroutine(runServeLoad) sends exactly one terminal value on errs; the drain loop below receives all clients values before returning
		go func(cl int) {
			res := make([]serve.Result, perBatch)
			for b := cl; b < nBatches; b += clients {
				lo := b * perBatch
				hi := lo + perBatch
				if hi > requests {
					hi = requests
				}
				if err := svc.DecodeBatchInto(ctx, res[:hi-lo], syndromes[lo:hi]); err != nil {
					errs <- err
					return
				}
				for i := lo; i < hi; i++ {
					r := &res[i-lo]
					latencies[i] = r.QueueWaitNs + r.DecodeNs + r.CopyOutNs
				}
			}
			errs <- nil
		}(cl)
	}
	for cl := 0; cl < clients; cl++ {
		if err := <-errs; err != nil {
			return serveLoad{}, err
		}
	}
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	return serveLoad{
		Model:    key,
		Decoder:  "BP(30)",
		Requests: requests,
		Batch:    batchSize,
		Clients:  clients,
		QPS:      float64(requests) / elapsed.Seconds(),
		P50Ns:    latencies[len(latencies)/2],
		P99Ns:    latencies[len(latencies)*99/100],
	}, nil
}

// runProtoLoads drives the identical workload over real loopback
// sockets through the three serving paths — JSON HTTP direct to the
// daemon, binary wire direct, and binary wire through a vegapunkrouter
// relay over a single replica (so the router row isolates pure relay
// overhead, not extra compute). One serve.Server backs all three runs.
func runProtoLoads(requests, batchSize, clients int) ([]protoLoad, error) {
	c, err := code.NewBBByIndex(0)
	if err != nil {
		return nil, err
	}
	model := dem.CodeCapacity(c, 0.01)
	factory := func() core.Decoder { return core.NewBP(model, 30) }
	srv := serve.NewServer(serve.Config{MaxBatch: batchSize, MaxInFlight: 4 * clients})
	key := serve.ModelKey(c.Name, "BP", 0.01)
	if _, err := srv.Register(key, model, "BP(30)", factory); err != nil {
		return nil, err
	}
	httpL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	wireL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	//vegapunk:goroutine(runProtoLoads) accept loop returns when the deferred srv.Shutdown closes the listener
	go func() { _ = srv.Serve(httpL) }()
	//vegapunk:goroutine(runProtoLoads) accept loop returns when the deferred srv.Shutdown closes the listener
	go func() { _ = srv.ServeWire(wireL) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx) // best-effort: measurement is done
	}()

	rt, err := cluster.New(cluster.Config{
		Replicas:      []string{wireL.Addr().String()},
		ProbeInterval: 50 * time.Millisecond,
		PoolSize:      clients,
	})
	if err != nil {
		return nil, err
	}
	routerL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	//vegapunk:goroutine(runProtoLoads) accept loop returns when the deferred rt.Shutdown closes the listener
	go func() { _ = rt.Serve(routerL) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = rt.Shutdown(ctx) // best-effort: measurement is done
	}()

	syndromes := sampleSyndromes(model, requests*batchSize)
	runs := []struct {
		proto string
		drive func() ([]int64, time.Duration, error)
	}{
		{"json-http", func() ([]int64, time.Duration, error) {
			return driveJSON("http://"+httpL.Addr().String(), key, syndromes, requests, batchSize, clients)
		}},
		{"binary", func() ([]int64, time.Duration, error) {
			return driveBinary(wireL.Addr().String(), key, syndromes, requests, batchSize, clients, false)
		}},
		{"binary-telemetry", func() ([]int64, time.Duration, error) {
			return driveBinary(wireL.Addr().String(), key, syndromes, requests, batchSize, clients, true)
		}},
		{"binary-router", func() ([]int64, time.Duration, error) {
			return driveBinary(routerL.Addr().String(), key, syndromes, requests, batchSize, clients, false)
		}},
	}
	// Interleaved best-of-N rounds: measuring each path once, in
	// sequence, lets machine drift on a shared runner masquerade as a
	// path-level regression (the later paths always eat the slowdown).
	// Alternating rounds spread the drift evenly, and keeping each
	// path's best round reports the least-interfered measurement —
	// which is what makes the binary vs binary-telemetry delta an
	// honest read of the telemetry cost.
	const protoRounds = 3
	out := make([]protoLoad, len(runs))
	for round := 0; round < protoRounds; round++ {
		for ri, run := range runs {
			lats, elapsed, err := run.drive()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", run.proto, err)
			}
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			qps := float64(requests) / elapsed.Seconds()
			if round == 0 || qps > out[ri].QPS {
				out[ri] = protoLoad{
					Proto:    run.proto,
					Requests: requests,
					Batch:    batchSize,
					Clients:  clients,
					QPS:      qps,
					P50Ns:    lats[len(lats)/2],
					P99Ns:    lats[len(lats)*99/100],
				}
			}
		}
	}
	for _, p := range out {
		fmt.Fprintf(os.Stderr, "  %-13s qps=%.0f p50=%s p99=%s\n", p.Proto,
			p.QPS, time.Duration(p.P50Ns), time.Duration(p.P99Ns))
	}
	return out, nil
}

// runSlowLinkLoads measures the hedged-dispatch win on an asymmetric
// network — the BENCH-artifact counterpart of the NetChaos slow-link
// test. Two identical replicas sit behind deterministic netfault
// proxies; a short warm-up identifies the rendezvous winner by which
// proxy's forwarded-byte counter moved, then that link degrades to
// ModeSlow (10ms per forwarded chunk). The "router-slowlink" row
// routes through a hedge-disabled router and eats the slow link on
// every batch; "router-slowlink-hedged" arms hedged dispatch, so the
// first stalled read fires onto the healthy sibling and the
// Retry-After suspension keeps follow-up batches there.
func runSlowLinkLoads(batchSize int) ([]protoLoad, error) {
	const (
		slowRequests = 48
		slowClients  = 1
	)
	c, err := code.NewBBByIndex(0)
	if err != nil {
		return nil, err
	}
	model := dem.CodeCapacity(c, 0.01)
	factory := func() core.Decoder { return core.NewBP(model, 30) }
	key := serve.ModelKey(c.Name, "BP", 0.01)

	proxies := make([]*netfault.Proxy, 2)
	for i := range proxies {
		srv := serve.NewServer(serve.Config{MaxBatch: batchSize, MaxInFlight: 8})
		if _, err := srv.Register(key, model, "BP(30)", factory); err != nil {
			return nil, err
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		//vegapunk:goroutine(runSlowLinkLoads) accept loop returns when the deferred srv.Shutdown closes the listener
		go func() { _ = srv.ServeWire(l) }()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx) // best-effort: measurement is done
		}()
		p, err := netfault.Start(l.Addr().String(), netfault.Plan{SlowFor: 10 * time.Millisecond})
		if err != nil {
			return nil, err
		}
		defer func() { _ = p.Close() }() // best-effort: measurement teardown
		proxies[i] = p
	}
	replicas := []string{proxies[0].Addr(), proxies[1].Addr()}

	startRouter := func(hedge time.Duration) (net.Listener, func(), error) {
		rt, err := cluster.New(cluster.Config{
			Replicas:          replicas,
			ProbeInterval:     20 * time.Millisecond,
			IOTimeout:         5 * time.Second,
			PoolSize:          slowClients,
			HedgeAfter:        hedge,
			HedgeMaxRate:      1,
			RetryAfterHint:    10 * time.Second,
			RetryBudgetPerSec: 1000,
			RetryBudgetBurst:  1000,
		})
		if err != nil {
			return nil, nil, err
		}
		stop := func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = rt.Shutdown(ctx) // best-effort: measurement is done
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return nil, nil, err
		}
		//vegapunk:goroutine(runSlowLinkLoads) accept loop returns when the returned stop func shuts the router down
		go func() { _ = rt.Serve(l) }()
		return l, stop, nil
	}

	syndromes := sampleSyndromes(model, slowRequests*batchSize)
	offL, offStop, err := startRouter(0)
	if err != nil {
		return nil, err
	}
	defer offStop()

	// Identify the rendezvous winner without reaching into cluster
	// internals: both links are still in pass mode, so all warm-up
	// traffic lands on the winner's proxy.
	f0 := proxies[0].Counters.Forwarded.Load()
	f1 := proxies[1].Counters.Forwarded.Load()
	if _, _, err := driveBinary(offL.Addr().String(), key, syndromes, 4, batchSize, 1, false); err != nil {
		return nil, fmt.Errorf("slow-link warm-up: %w", err)
	}
	win := proxies[0]
	if proxies[1].Counters.Forwarded.Load()-f1 > proxies[0].Counters.Forwarded.Load()-f0 {
		win = proxies[1]
	}
	win.SetMode(netfault.ModeSlow)
	defer win.SetMode(netfault.ModePass)

	out := make([]protoLoad, 0, 2)
	measure := func(proto, addr string) error {
		lats, elapsed, err := driveBinary(addr, key, syndromes, slowRequests, batchSize, slowClients, false)
		if err != nil {
			return fmt.Errorf("%s: %w", proto, err)
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		out = append(out, protoLoad{
			Proto:    proto,
			Requests: slowRequests,
			Batch:    batchSize,
			Clients:  slowClients,
			QPS:      float64(slowRequests) / elapsed.Seconds(),
			P50Ns:    lats[len(lats)/2],
			P99Ns:    lats[len(lats)*99/100],
		})
		return nil
	}
	if err := measure("router-slowlink", offL.Addr().String()); err != nil {
		return nil, err
	}
	onL, onStop, err := startRouter(5 * time.Millisecond)
	if err != nil {
		return nil, err
	}
	defer onStop()
	if err := measure("router-slowlink-hedged", onL.Addr().String()); err != nil {
		return nil, err
	}
	for _, p := range out {
		fmt.Fprintf(os.Stderr, "  %-22s qps=%.0f p50=%s p99=%s\n", p.Proto,
			p.QPS, time.Duration(p.P50Ns), time.Duration(p.P99Ns))
	}
	return out, nil
}

// driveJSON measures client-observed round trips for batch POSTs to
// /v1/decode over persistent HTTP connections.
func driveJSON(base, key string, syndromes []gf2.Vec, requests, batchSize, clients int) ([]int64, time.Duration, error) {
	type jsonReq struct {
		Model     string   `json:"model"`
		Syndromes []string `json:"syndromes"`
	}
	bodies := make([][]byte, requests)
	for i := range bodies {
		req := jsonReq{Model: key, Syndromes: make([]string, batchSize)}
		for j := 0; j < batchSize; j++ {
			req.Syndromes[j] = syndromes[i*batchSize+j].String()
		}
		var err error
		if bodies[i], err = json.Marshal(req); err != nil {
			return nil, 0, err
		}
	}
	client := &http.Client{
		Timeout:   30 * time.Second,
		Transport: &http.Transport{MaxIdleConnsPerHost: clients},
	}
	// Warm connections and pools before timing.
	if err := postJSON(client, base, bodies[0]); err != nil {
		return nil, 0, err
	}
	lats := make([]int64, requests)
	errs := make(chan error, clients)
	start := time.Now()
	for cl := 0; cl < clients; cl++ {
		//vegapunk:goroutine(driveJSON) sends exactly one terminal value on errs; the drain loop below receives all clients values before returning
		go func(cl int) {
			for i := cl; i < requests; i += clients {
				t0 := time.Now()
				if err := postJSON(client, base, bodies[i]); err != nil {
					errs <- err
					return
				}
				lats[i] = time.Since(t0).Nanoseconds()
			}
			errs <- nil
		}(cl)
	}
	for cl := 0; cl < clients; cl++ {
		if err := <-errs; err != nil {
			return nil, 0, err
		}
	}
	return lats, time.Since(start), nil
}

func postJSON(client *http.Client, base string, body []byte) error {
	resp, err := client.Post(base+"/v1/decode", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	_, cerr := io.Copy(io.Discard, resp.Body)
	if err := resp.Body.Close(); err != nil {
		return err
	}
	if cerr != nil {
		return cerr
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /v1/decode: status %d", resp.StatusCode)
	}
	return nil
}

// driveBinary measures client-observed round trips for pipelined wire
// frame batches on persistent connections (one per client goroutine).
// With telemetry set, every request carries a trace block and every
// response is parsed with its server-timing block — the telemetry-on
// vs telemetry-off pair that bounds the extension's cost on the binary
// path.
func driveBinary(addr, key string, syndromes []gf2.Vec, requests, batchSize, clients int, telemetry bool) ([]int64, time.Duration, error) {
	lats := make([]int64, requests)
	errs := make(chan error, clients)
	conns := make([]*wire.Client, clients)
	for cl := range conns {
		c, err := wire.Dial(addr, 2*time.Second, 30*time.Second)
		if err != nil {
			return nil, 0, err
		}
		defer func() { _ = c.Close() }() // best-effort: measurement teardown
		conns[cl] = c
	}
	// Warm connections, model bindings and pools before timing.
	info, err := conns[0].Hello(key)
	if err != nil {
		return nil, 0, err
	}
	var warm wire.Result
	wire.SizeResult(&warm, info.NumMech, info.NumObs)
	if _, err := conns[0].Decode(info.ID, 0, syndromes[0], &warm); err != nil {
		return nil, 0, err
	}
	start := time.Now()
	for cl := 0; cl < clients; cl++ {
		//vegapunk:goroutine(driveBinary) sends exactly one terminal value on errs; the drain loop below receives all clients values before returning
		go func(cl int) {
			c := conns[cl]
			info, err := c.Hello(key)
			if err != nil {
				errs <- err
				return
			}
			var res wire.Result
			wire.SizeResult(&res, info.NumMech, info.NumObs)
			var tm wire.ServerTiming
			for i := cl; i < requests; i += clients {
				t0 := time.Now()
				for j := 0; j < batchSize; j++ {
					reqID := uint64(i*batchSize + j)
					if telemetry {
						c.QueueDecodeTraced(info.ID, reqID, syndromes[reqID],
							wire.TraceContext{TraceID: reqID + 1})
					} else {
						c.QueueDecode(info.ID, reqID, syndromes[reqID])
					}
				}
				if err := c.Flush(); err != nil {
					errs <- err
					return
				}
				for j := 0; j < batchSize; j++ {
					var err error
					if telemetry {
						_, _, err = c.ReadResultTimed(&res, &tm)
					} else {
						_, err = c.ReadResult(&res)
					}
					if err != nil {
						errs <- err
						return
					}
					if res.Status != wire.StatusOK {
						errs <- fmt.Errorf("decode status %s", res.Status)
						return
					}
				}
				lats[i] = time.Since(t0).Nanoseconds()
			}
			errs <- nil
		}(cl)
	}
	for cl := 0; cl < clients; cl++ {
		if err := <-errs; err != nil {
			return nil, 0, err
		}
	}
	return lats, time.Since(start), nil
}

func protoByName(loads []protoLoad, proto string) *protoLoad {
	for i := range loads {
		if loads[i].Proto == proto {
			return &loads[i]
		}
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// sampleSyndromes draws n reproducible syndromes from the model.
func sampleSyndromes(model *dem.Model, n int) []gf2.Vec {
	rng := rand.New(rand.NewPCG(42, 7))
	out := make([]gf2.Vec, n)
	e := gf2.NewVec(model.NumMech())
	for i := range out {
		model.SampleInto(e, rng)
		out[i] = model.Syndrome(e)
	}
	return out
}

// runCompare loads the two newest artifacts and fails on regression.
func runCompare(dir string, tolerance float64) int {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	type numbered struct {
		n    int
		path string
	}
	var arts []numbered
	re := regexp.MustCompile(`BENCH_(\d+)\.json$`)
	for _, p := range paths {
		if m := re.FindStringSubmatch(p); m != nil {
			n, _ := strconv.Atoi(m[1])
			arts = append(arts, numbered{n, p})
		}
	}
	if len(arts) < 2 {
		// First point of the trajectory: nothing to compare against.
		return 0
	}
	sort.Slice(arts, func(i, j int) bool { return arts[i].n < arts[j].n })
	oldArt, err := readArtifact(arts[len(arts)-2].path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	newArt, err := readArtifact(arts[len(arts)-1].path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	// A newest artifact that parses but carries no benchmarks would make
	// every comparison below vacuously pass — fail loudly instead of
	// waving a truncated or hand-edited file through.
	if len(newArt.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %s has no benchmarks; truncated or malformed artifact\n",
			arts[len(arts)-1].path)
		return 2
	}

	oldBy := map[string]benchResult{}
	for _, b := range oldArt.Benchmarks {
		oldBy[b.Pkg+"/"+b.Name] = b
	}
	failed := false
	matched := 0
	for _, nb := range newArt.Benchmarks {
		ob, ok := oldBy[nb.Pkg+"/"+nb.Name]
		if !ok {
			continue // new benchmark this PR; no baseline
		}
		matched++
		if nb.NsPerOp > ob.NsPerOp*(1+tolerance) {
			fmt.Fprintf(os.Stderr, "REGRESSION %s %s: %.0f ns/op -> %.0f ns/op (+%.1f%%)\n",
				nb.Pkg, nb.Name, ob.NsPerOp, nb.NsPerOp, 100*(nb.NsPerOp/ob.NsPerOp-1))
			failed = true
		}
		if nb.AllocsPerOp > ob.AllocsPerOp {
			fmt.Fprintf(os.Stderr, "REGRESSION %s %s: %.1f allocs/op -> %.1f allocs/op\n",
				nb.Pkg, nb.Name, ob.AllocsPerOp, nb.AllocsPerOp)
			failed = true
		}
	}
	if o, n := oldArt.ServeLoad, newArt.ServeLoad; o.QPS > 0 && n.QPS < o.QPS*(1-tolerance) {
		fmt.Fprintf(os.Stderr, "REGRESSION serve load: %.0f QPS -> %.0f QPS (-%.1f%%)\n",
			o.QPS, n.QPS, 100*(1-n.QPS/o.QPS))
		failed = true
	}
	for _, np := range newArt.ProtoLoads {
		op := protoByName(oldArt.ProtoLoads, np.Proto)
		if op == nil {
			continue // new protocol path this PR; no baseline
		}
		if np.QPS < op.QPS*(1-tolerance) {
			fmt.Fprintf(os.Stderr, "REGRESSION proto load %s: %.0f QPS -> %.0f QPS (-%.1f%%)\n",
				np.Proto, op.QPS, np.QPS, 100*(1-np.QPS/op.QPS))
			failed = true
		}
	}
	// Zero overlap means nothing was actually compared — renamed
	// benchmarks or a corrupted artifact, either way not a pass.
	if matched == 0 && len(oldArt.Benchmarks) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark in %s matches any in %s; nothing was compared\n",
			arts[len(arts)-1].path, arts[len(arts)-2].path)
		return 2
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchjson: %s regressed past %s by more than %.0f%%\n",
			arts[len(arts)-1].path, arts[len(arts)-2].path, tolerance*100)
		return 1
	}
	fmt.Printf("benchjson: %s within %.0f%% of %s\n",
		arts[len(arts)-1].path, tolerance*100, arts[len(arts)-2].path)
	return 0
}

func readArtifact(path string) (artifact, error) {
	var a artifact
	buf, err := os.ReadFile(path)
	if err != nil {
		return a, err
	}
	if err := json.Unmarshal(buf, &a); err != nil {
		return a, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}
