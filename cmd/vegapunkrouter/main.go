// Command vegapunkrouter is the sharded-serving front end: it accepts
// binary wire-protocol connections (internal/wire) and routes decode
// requests across a set of vegapunkd replicas by rendezvous-hashing
// each model key, so every key pins to one replica and its
// micro-batches stay dense.
//
//	vegapunkrouter -listen :9471 -admin 127.0.0.1:9472 \
//	    -replicas 127.0.0.1:8473,127.0.0.1:8474
//
// Replica health is tracked passively from response flags (breaker
// open, degraded, draining) and actively by ping probes; requests that
// a replica sheds or fast-fails are retried on the next-best healthy
// sibling under a per-replica token-bucket retry budget
// (-retry-budget-per-sec), with the retry flagged in the response.
// -hedge-after arms hedged dispatch: a batch without a first response
// inside the window is re-sent to the sibling (rate-capped by
// -hedge-rate), and -max-inflight-lanes bounds admission so a
// partitioned replica cannot queue-collapse the front end. The admin
// listener serves /metrics (per-replica health, retries, failovers,
// open connections, network-vs-server latency split, SLO burn) and
// /healthz; with -replica-traces it also serves /debug/clustertrace,
// a Chrome trace_event document merging the router's forwarding spans
// with each replica's stage spans, clock-offset aligned.
//
// SIGINT/SIGTERM drain gracefully: in-flight batches finish, then the
// process exits 0.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vegapunk/internal/cluster"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("vegapunkrouter", flag.ExitOnError)
	listen := fs.String("listen", ":9471", "client-facing wire-protocol listen address")
	admin := fs.String("admin", "", "optional admin HTTP listener for /metrics and /healthz (e.g. 127.0.0.1:9472)")
	replicas := fs.String("replicas", "", "comma-separated wire-protocol replica addresses (required)")
	dialTimeout := fs.Duration("dial-timeout", 2*time.Second, "backend dial timeout")
	ioTimeout := fs.Duration("io-timeout", 10*time.Second, "backend read/write timeout")
	probeInterval := fs.Duration("probe-interval", 250*time.Millisecond, "active health-probe period")
	poolSize := fs.Int("pool", 4, "idle backend connections kept per replica")
	replicaTraces := fs.String("replica-traces", "", "comma-separated replica debug base URLs (parallel to -replicas, entries may be empty) for /debug/clustertrace merging")
	traceSample := fs.Uint64("trace-sample", 8, "trace one in every N router-originated requests (1 traces everything)")
	sloTarget := fs.Duration("slo-target", 5*time.Millisecond, "per-request latency target for the rolling SLO window")
	sloBudget := fs.Float64("slo-budget", 0.01, "tolerated fraction of requests over -slo-target")
	sloWindow := fs.Int("slo-window", 1024, "requests held in the rolling SLO window")
	retryPerSec := fs.Float64("retry-budget-per-sec", 50, "per-replica retry token refill rate; an empty bucket fails lanes terminally instead of amplifying load")
	retryBurst := fs.Float64("retry-budget-burst", 100, "per-replica retry token bucket capacity")
	hedgeAfter := fs.Duration("hedge-after", 0, "re-send a slow batch to the sibling after this long without a first response (0 disables hedging)")
	hedgeRate := fs.Float64("hedge-rate", 0.1, "hedge tokens earned per forwarded batch; caps hedges as a fraction of traffic")
	maxLanes := fs.Int("max-inflight-lanes", 4096, "router-wide bound on concurrently forwarded lanes; excess fails fast with overload")
	retryAfter := fs.Duration("retry-after-hint", 25*time.Millisecond, "how long to route around a replica after it reports overload or loses a hedge race")
	noResync := fs.Bool("no-backend-resync", false, "fail backend connections on a corrupt frame header instead of scanning to the next frame boundary")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}

	logger := log.New(os.Stderr, "vegapunkrouter ", log.LstdFlags|log.Lmicroseconds)

	var addrs []string
	for _, a := range strings.Split(*replicas, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	var traceURLs []string
	if *replicaTraces != "" {
		for _, u := range strings.Split(*replicaTraces, ",") {
			traceURLs = append(traceURLs, strings.TrimSpace(u))
		}
	}
	rt, err := cluster.New(cluster.Config{
		Replicas:         addrs,
		DialTimeout:      *dialTimeout,
		IOTimeout:        *ioTimeout,
		ProbeInterval:    *probeInterval,
		PoolSize:         *poolSize,
		TraceURLs:        traceURLs,
		TraceSampleEvery: *traceSample,
		SLOTarget:        *sloTarget,
		SLOBudget:        *sloBudget,
		SLOWindow:        *sloWindow,

		RetryBudgetPerSec:    *retryPerSec,
		RetryBudgetBurst:     *retryBurst,
		HedgeAfter:           *hedgeAfter,
		HedgeMaxRate:         *hedgeRate,
		MaxInFlightLanes:     *maxLanes,
		RetryAfterHint:       *retryAfter,
		DisableBackendResync: *noResync,
	})
	if err != nil {
		logger.Printf("%v", err)
		return 2
	}
	logger.Printf("routing across %d replicas: %s", len(addrs), strings.Join(addrs, ", "))

	if *admin != "" {
		adm := &http.Server{Addr: *admin, Handler: rt.Handler()}
		//vegapunk:goroutine(process) admin listener lives for the process; the OS reaps it when main exits
		go func() {
			if err := adm.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Printf("admin listener: %v", err)
			}
		}()
		logger.Printf("admin endpoints (metrics, healthz) on %s", *admin)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	//vegapunk:goroutine(main) sends exactly one value into the buffered errCh when the listener exits; main selects on it
	go func() { errCh <- rt.ListenAndServe(*listen) }()
	logger.Printf("listening on %s", *listen)

	select {
	case err := <-errCh:
		if err != nil {
			logger.Printf("serve: %v", err)
			return 1
		}
		return 0
	case <-ctx.Done():
	}
	logger.Printf("signal received, draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rt.Shutdown(shutCtx); err != nil {
		logger.Printf("shutdown: %v", err)
		return 1
	}
	if err := <-errCh; err != nil {
		logger.Printf("serve: %v", err)
		return 1
	}
	logger.Printf("drained, bye")
	return 0
}
