// Command vegapunkd is the online decoding daemon: it registers one or
// more (code, noise, decoder) models and serves syndrome decoding over
// a JSON HTTP API with micro-batching, decoder pooling and Prometheus
// metrics.
//
//	vegapunkd -addr :8471 -code "BB [[72,12,6]]" -p 0.001 -decoders bp,vegapunk
//
// Endpoints:
//
//	POST /v1/decode        {"model": "<key>", "syndrome": "0101..."} or {"syndromes": [...]}
//	GET  /v1/models        registered model keys and dimensions
//	GET  /metrics          Prometheus text format
//	GET  /healthz          liveness
//	GET  /debug/decodetrace  sampled decode spans as Chrome trace JSON
//
// With -listen-wire the daemon additionally serves the binary wire
// protocol (internal/wire) on a second listener: length-prefixed frames
// carrying raw syndrome/correction words over persistent connections,
// the low-latency path used by vegapunkrouter and decodeload -proto
// binary. Pipelined wire requests coalesce into the same micro-batches
// as HTTP traffic.
//
// With -debug-addr a second localhost listener serves net/http/pprof
// (/debug/pprof/...) plus the same decode-trace dump; with -slow-log
// every request slower than -slow-threshold is appended to the given
// file as one JSON line.
//
// With -chaos every registered decoder factory is wrapped in a
// deterministic fault injector (internal/faultinject) seeded by
// -chaos-seed: a small fraction of decodes run slow, panic, return
// wrong-length results, stall past the watchdog, or skew their trace
// clock. This exercises the resilience machinery — worker quarantine,
// hang watchdog, circuit breaker, deadline shedding and the
// degradation ladder — against a live daemon; injected fault totals
// are logged at shutdown.
//
// SIGINT/SIGTERM drain gracefully: in-flight requests finish, queues
// flush, then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vegapunk/internal/core"
	"vegapunk/internal/dem"
	"vegapunk/internal/exp"
	"vegapunk/internal/faultinject"
	"vegapunk/internal/hier"
	"vegapunk/internal/obs"
	"vegapunk/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("vegapunkd", flag.ExitOnError)
	addr := fs.String("addr", ":8471", "listen address")
	wireAddr := fs.String("listen-wire", "", "optional binary wire-protocol listener (e.g. :8473); the low-latency path used by vegapunkrouter and decodeload -proto binary")
	codeName := fs.String("code", "BB [[72,12,6]]", "benchmark code name (see 'vegapunk codes')")
	p := fs.Float64("p", 0.001, "physical error rate of the served noise model")
	decoders := fs.String("decoders", "vegapunk,bp", "comma-separated decoders to register: vegapunk, bp, bp+osd, bp+lsd, bpgd")
	bpIters := fs.Int("bp-iters", 100, "BP iteration cap for the bp decoder")
	pool := fs.Int("pool", 0, "decoder pool size per model (0 = GOMAXPROCS)")
	batch := fs.Int("batch", 16, "micro-batch flush size")
	wait := fs.Duration("wait", 200*time.Microsecond, "micro-batch flush deadline under saturation")
	inflight := fs.Int("inflight", 64, "max concurrently admitted HTTP decode requests")
	timeout := fs.Duration("timeout", 2*time.Second, "per-request decode deadline")
	debugAddr := fs.String("debug-addr", "", "optional localhost listener for /debug/pprof and /debug/decodetrace (e.g. 127.0.0.1:8472)")
	traceSample := fs.Uint64("trace-sample", 8, "trace one in N decodes into the span rings (0 disables tracing)")
	slowLogPath := fs.String("slow-log", "", "append slow-request JSON lines to this file ('-' for stderr)")
	slowThreshold := fs.Duration("slow-threshold", 10*time.Millisecond, "end-to-end latency above which a request is logged as slow")
	hangTimeout := fs.Duration("hang-timeout", time.Second, "decode watchdog: quarantine a decoder instance that has not returned after this long")
	maxDegradeTier := fs.Int("max-degrade-tier", 0, "degradation ladder ceiling (0 = full ladder, negative disables degradation)")
	breakerThreshold := fs.Int("breaker-threshold", 3, "consecutive decoder faults that trip the circuit breaker (negative disables)")
	breakerCooldown := fs.Duration("breaker-cooldown", 2*time.Second, "how long a tripped breaker fast-fails before probing again")
	chaos := fs.Bool("chaos", false, "wrap every decoder in a deterministic fault injector (testing only)")
	chaosSeed := fs.Uint64("chaos-seed", 1, "fault injector base seed (with -chaos)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}

	logger := log.New(os.Stderr, "vegapunkd ", log.LstdFlags|log.Lmicroseconds)

	tracer := obs.NewTracer(obs.TracerConfig{SampleEvery: *traceSample})
	if *traceSample == 0 {
		tracer.SetEnabled(false)
	}
	var slowLog *obs.SlowLog
	switch *slowLogPath {
	case "":
	case "-":
		slowLog = obs.NewSlowLog(os.Stderr, 0)
	default:
		f, err := os.OpenFile(*slowLogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Printf("open slow log: %v", err)
			return 1
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				logger.Printf("close slow log: %v", cerr)
			}
		}()
		slowLog = obs.NewSlowLog(f, 0)
	}
	if slowLog != nil {
		defer slowLog.Close()
	}

	b, ok := findBenchmark(*codeName)
	if !ok {
		logger.Printf("unknown code %q; run 'vegapunk codes' for the registry", *codeName)
		return 2
	}
	ws := exp.NewWorkspace()
	model, err := ws.Model(b, *p)
	if err != nil {
		logger.Printf("build model: %v", err)
		return 1
	}

	srv := serve.NewServer(serve.Config{
		MaxBatch:         *batch,
		MaxWait:          *wait,
		PoolSize:         *pool,
		MaxInFlight:      *inflight,
		RequestTimeout:   *timeout,
		Tracer:           tracer,
		SlowLog:          slowLog,
		SlowThreshold:    *slowThreshold,
		HangTimeout:      *hangTimeout,
		MaxDegradeTier:   *maxDegradeTier,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
	})
	// Low but lively default mix: mostly-healthy traffic with every fault
	// kind represented, so a chaos run exercises shedding, quarantine,
	// the watchdog and the breaker without drowning the service.
	chaosPlan := faultinject.Plan{
		Seed:      *chaosSeed,
		PSlow:     0.02,
		PPanic:    0.005,
		PWrongLen: 0.005,
		PStall:    0.002,
		PSkew:     0.01,
		SlowFor:   2 * time.Millisecond,
		StallFor:  3 * time.Second,
	}
	type chaosModel struct {
		key      string
		counters *faultinject.Counters
	}
	var chaosModels []chaosModel
	for _, name := range strings.Split(*decoders, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		factory, err := buildFactory(ws, b, model, name, *bpIters)
		if err != nil {
			logger.Printf("%v", err)
			return 1
		}
		key := serve.ModelKey(b.Name, name, *p)
		if *chaos {
			var counters *faultinject.Counters
			factory, counters = faultinject.Wrap(factory, chaosPlan)
			chaosModels = append(chaosModels, chaosModel{key: key, counters: counters})
		}
		display := factory().Name()
		if _, err := srv.Register(key, model, display, factory); err != nil {
			logger.Printf("register %s: %v", key, err)
			return 1
		}
		logger.Printf("registered model=%s decoder=%s detectors=%d mechanisms=%d",
			key, display, model.NumDet, model.NumMech())
	}
	if *chaos {
		logger.Printf("CHAOS MODE: fault injection enabled (seed=%d); do not use in production", *chaosSeed)
		defer func() {
			for _, cm := range chaosModels {
				c := cm.counters
				logger.Printf("chaos totals model=%s decodes=%d injected=%d slow=%d panics=%d wronglen=%d stalls=%d skews=%d",
					cm.key, c.Decodes.Load(), c.Injected(), c.Slow.Load(), c.Panics.Load(),
					c.WrongLen.Load(), c.Stalls.Load(), c.Skews.Load())
			}
		}()
	}

	if *debugAddr != "" {
		dbg := &http.Server{Addr: *debugAddr, Handler: obs.DebugMux(tracer)}
		//vegapunk:goroutine(process) debug listener lives for the process; the OS reaps it when main exits
		go func() {
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Printf("debug listener: %v", err)
			}
		}()
		logger.Printf("debug endpoints (pprof, decodetrace) on %s", *debugAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	//vegapunk:goroutine(main) sends exactly one value into the buffered errCh when the listener exits; main selects on it
	go func() { errCh <- srv.ListenAndServe(*addr) }()
	logger.Printf("listening on %s", *addr)
	var wireErrCh chan error
	if *wireAddr != "" {
		wireErrCh = make(chan error, 1)
		//vegapunk:goroutine(main) sends exactly one value into the buffered wireErrCh when the listener exits; main selects on it
		go func() { wireErrCh <- srv.ListenAndServeWire(*wireAddr) }()
		logger.Printf("wire protocol on %s", *wireAddr)
	}

	select {
	case err := <-errCh:
		if err != nil {
			logger.Printf("serve: %v", err)
			return 1
		}
		return 0
	case err := <-wireErrCh:
		if err != nil {
			logger.Printf("serve wire: %v", err)
			return 1
		}
		return 0
	case <-ctx.Done():
	}
	logger.Printf("signal received, draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Printf("shutdown: %v", err)
		return 1
	}
	if err := <-errCh; err != nil {
		logger.Printf("serve: %v", err)
		return 1
	}
	if wireErrCh != nil {
		if err := <-wireErrCh; err != nil {
			logger.Printf("serve wire: %v", err)
			return 1
		}
	}
	logger.Printf("drained, bye")
	return 0
}

func findBenchmark(name string) (exp.Benchmark, bool) {
	for _, b := range exp.Benchmarks() {
		if b.Name == name {
			return b, true
		}
	}
	return exp.Benchmark{}, false
}

// buildFactory maps a decoder flag name to a per-goroutine decoder
// factory, mirroring the baseline configurations of internal/exp.
func buildFactory(ws *exp.Workspace, b exp.Benchmark, model *dem.Model, name string, bpIters int) (core.Factory, error) {
	switch strings.ToLower(name) {
	case "vegapunk":
		dcp, err := ws.Decoupling(b)
		if err != nil {
			return nil, fmt.Errorf("offline decoupling for %s: %w", b.Name, err)
		}
		return func() core.Decoder { return core.NewVegapunkFrom(model, dcp, hier.Config{}) }, nil
	case "bp":
		return func() core.Decoder { return core.NewBP(model, bpIters) }, nil
	case "bp+osd", "bposd":
		return func() core.Decoder { return core.NewBPOSD(model, bpIters, 7) }, nil
	case "bp+lsd", "bplsd":
		return func() core.Decoder { return core.NewBPLSD(model) }, nil
	case "bpgd":
		return func() core.Decoder { return core.NewBPGD(model) }, nil
	}
	return nil, fmt.Errorf("unknown decoder %q (want vegapunk, bp, bp+osd, bp+lsd or bpgd)", name)
}
