// Command vegacheck enforces the repo's machine-checked invariants with
// a from-scratch stdlib-only static analyzer (see internal/analysis):
// allocation-free //vegapunk:hotpath functions, decode-result scratch
// ownership at pool boundaries, lock-copy hygiene on serve types,
// unchecked errors in cmd/ binaries and the serving and network
// layers (internal/serve, internal/faultinject, internal/netfault,
// internal/wire, internal/cluster), and the concurrency
// contracts — goroutine-lifecycle (every go statement bounded or
// annotated //vegapunk:goroutine(<owner>)), lock-blocking (no channel
// op, net I/O or sleep while a mutex is held), ctx-propagate
// (cancellation must flow; no context roots inside the serving
// layers) and atomic-mix (no plain access to sync/atomic variables).
//
//	go run ./cmd/vegacheck ./...
//
// Package patterns filter which diagnostics are reported (the whole
// module is always loaded and analyzed — cross-package rules need it);
// with no pattern, everything is reported. Exits 1 when diagnostics
// survive, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vegapunk/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("vegacheck", flag.ContinueOnError)
	verbose := fs.Bool("v", false, "print the hot-path closure summary")
	dir := fs.String("C", ".", "directory inside the module to analyze")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	res, err := analysis.Run(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vegacheck: %v\n", err)
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		cwd = res.Dir
	}
	filters := patternFilters(*dir, fs.Args())
	n := 0
	for _, d := range res.Diagnostics {
		if !filters.match(d.Pos.Filename) {
			continue
		}
		name := d.Pos.Filename
		if rel, rerr := filepath.Rel(cwd, name); rerr == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
		n++
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "vegacheck: module %s: %d hotpath functions, %d in closure, %d diagnostics\n",
			res.Module, len(res.HotpathFuncs), res.HotpathReached, n)
		for _, fn := range res.HotpathFuncs {
			fmt.Fprintf(os.Stderr, "  hotpath %s\n", fn)
		}
	}
	if n > 0 {
		return 1
	}
	return 0
}

// filter is one package pattern resolved to an absolute directory;
// recursive patterns ("dir/...") match the whole subtree.
type filter struct {
	dir       string
	recursive bool
}

type filterSet []filter

// patternFilters resolves go-style package patterns against base.
func patternFilters(base string, patterns []string) filterSet {
	var out filterSet
	for _, p := range patterns {
		f := filter{}
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			f.recursive = true
			p = rest
			if p == "" || p == "." {
				p = base
			}
		}
		if p == "" || p == "." {
			p = base
		}
		if !filepath.IsAbs(p) {
			p = filepath.Join(base, p)
		}
		abs, err := filepath.Abs(p)
		if err != nil {
			continue
		}
		f.dir = abs
		out = append(out, f)
	}
	return out
}

// match reports whether file is selected (an empty set selects all).
func (fs filterSet) match(file string) bool {
	if len(fs) == 0 {
		return true
	}
	dir := filepath.Dir(file)
	for _, f := range fs {
		if dir == f.dir {
			return true
		}
		if f.recursive && strings.HasPrefix(dir, f.dir+string(filepath.Separator)) {
			return true
		}
	}
	return false
}
