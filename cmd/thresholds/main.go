// Command thresholds runs high-statistics accuracy-threshold fits
// (Eq. 17) for the smaller benchmark codes — the slow, precise
// counterpart to `experiments -run table2`. Results for this repository
// are checked in as results_thresholds.txt.
//
//	thresholds -shots 6000 -maxn 300 > results_thresholds.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"vegapunk/internal/core"
	"vegapunk/internal/exp"
	"vegapunk/internal/hier"
	"vegapunk/internal/sim"
)

func main() {
	var (
		shots    = flag.Int("shots", 6000, "shots per sweep point (BP+OSD uses half)")
		maxN     = flag.Int("maxn", 300, "largest code size to fit")
		maxRound = flag.Int("rounds", 6, "cap on memory rounds")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers")
		seed     = flag.Uint64("seed", 99, "random seed")
	)
	flag.Parse()

	ws := exp.NewWorkspace()
	ps := exp.PaperPs
	for _, b := range exp.Benchmarks() {
		c, err := ws.Code(b)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if c.N > *maxN {
			continue
		}
		rounds := b.Rounds
		if rounds > *maxRound {
			rounds = *maxRound
		}
		fmt.Printf("%s (rounds=%d):\n", b.Name, rounds)
		dcp, err := ws.Decoupling(b)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, decName := range []string{"BP", "BP+OSD", "Vegapunk"} {
			t0 := time.Now()
			var pls []float64
			var rows string
			for _, p := range ps {
				model, err := ws.Model(b, p)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				var f core.Factory
				n := *shots
				switch decName {
				case "BP":
					f = func() core.Decoder { return core.NewBP(model, 200) }
				case "BP+OSD":
					f = func() core.Decoder { return core.NewBPOSD(model, 200, 7) }
					n = *shots / 2
				default:
					f = func() core.Decoder { return core.NewVegapunkFrom(model, dcp, hier.Config{}) }
				}
				r := sim.RunMemory(model, f, sim.MemoryConfig{
					Rounds: rounds, Shots: n, MaxFailures: 400,
					Workers: *workers, Seed: *seed,
				})
				pls = append(pls, r.PerRound)
				rows += fmt.Sprintf(" %.2e(%d/%d)", r.PerRound, r.Failures, r.Shots)
			}
			fit, err := sim.FitThreshold(ps, pls)
			fitStr := "n/a"
			switch {
			case err != nil:
			case fit.K > 1.02 && fit.Pt < 0.2:
				fitStr = fmt.Sprintf("pt=%.4f%% k=%.2f ±%.4f%%", 100*fit.Pt, fit.K, 100*fit.PtErr)
			default:
				fitStr = fmt.Sprintf("n/a (k=%.2f)", fit.K)
			}
			fmt.Printf("  %-8s%s  | %s  [%.0fs]\n", decName, rows, fitStr, time.Since(t0).Seconds())
		}
	}
}
