// Command experiments regenerates the tables and figures of the
// Vegapunk paper's evaluation section.
//
// Usage:
//
//	experiments -run fig10           # one experiment
//	experiments -run all             # everything, in paper order
//	experiments -list                # show available ids
//	experiments -run table2 -quality full -workers 16
//	experiments -run fig10 -cpuprofile cpu.out -memprofile mem.out
//	experiments -run fig10 -trace trace.json
//
// The profile outputs are standard pprof files; inspect them with
// `go tool pprof cpu.out`. The -trace output is Chrome trace_event JSON
// of the sampled per-stage decode spans; load it in chrome://tracing or
// Perfetto.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"vegapunk/internal/exp"
	"vegapunk/internal/obs"
)

// main delegates to run so that deferred cleanup (notably stopping the
// CPU profile) happens before os.Exit.
func main() { os.Exit(run()) }

func run() int {
	var (
		run        = flag.String("run", "", "experiment id (fig2, fig3a, fig3b, table1..table4, fig10..fig14b) or 'all'")
		list       = flag.Bool("list", false, "list available experiments")
		quality    = flag.String("quality", "quick", "Monte-Carlo budget: quick | normal | full")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel shot workers")
		seed       = flag.Uint64("seed", 2025, "random seed")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceOut   = flag.String("trace", "", "write sampled decode spans as Chrome trace JSON to this file")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, r := range exp.All() {
			fmt.Printf("  %-8s %s\n", r.ID, r.Title)
		}
		if *run == "" {
			return 0
		}
	}

	var q exp.Quality
	switch *quality {
	case "quick":
		q = exp.Quick
	case "normal":
		q = exp.Normal
	case "full":
		q = exp.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown quality %q\n", *quality)
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", cerr)
			}
		}()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	cfg := exp.Config{Out: os.Stdout, Quality: q, Workers: *workers, Seed: *seed}
	if *traceOut != "" {
		// Sample every decode: the per-worker rings are bounded and keep
		// the newest spans, so the trace ends up covering the tail of the
		// run at full resolution.
		cfg.Tracer = obs.NewTracer(obs.TracerConfig{SampleEvery: 1})
	}
	ws := exp.NewWorkspace()

	var runners []exp.Runner
	if *run == "all" {
		runners = exp.All()
	} else {
		r, ok := exp.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *run)
			return 2
		}
		runners = []exp.Runner{r}
	}
	exitCode := 0
	for _, r := range runners {
		t0 := time.Now()
		if err := r.Run(cfg, ws); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, err)
			exitCode = 1
			break
		}
		fmt.Printf("[%s completed in %v]\n\n", r.ID, time.Since(t0).Round(time.Millisecond))
	}

	if cfg.Tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			return 1
		}
		werr := cfg.Tracer.WriteTrace(f, 0)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", werr)
			return 1
		}
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			return 1
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
		}
	}
	return exitCode
}
