// Command allocgate turns the repo's "0 allocs/op" benchmark contracts
// into a hard gate: it runs the pinned decode/serve benchmarks with
// -benchmem and fails if any reports more than the allowed allocations
// per operation. This replaces the assert-by-comment convention in
// internal/README.md with something CI can enforce.
//
//	go run ./cmd/allocgate                  # pinned benchmark set
//	go run ./cmd/allocgate -bench 'BenchmarkBPDecode$' ./internal/bp
//
// Exits 1 when a benchmark exceeds the budget, 2 when `go test` itself
// fails or a pinned benchmark did not run (a renamed benchmark must not
// silently disable the gate).
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// The pinned contracts: every benchmark matched by bench in pkgs must
// report at most maxAllocs allocs/op.
var defaultPins = []struct {
	bench string
	pkgs  []string
}{
	{"BenchmarkBPDecode$", []string{"./internal/bp"}},
	{"BenchmarkBPDecodeBatch64$", []string{"./internal/bp"}},
	{"BenchmarkHierDecode$", []string{"./internal/hier"}},
	{"BenchmarkHierDecodeBatch64$", []string{"./internal/hier"}},
	{"BenchmarkOSDDecode$", []string{"./internal/osd"}},
	{"BenchmarkServiceDecode$", []string{"./internal/serve"}},
	{"BenchmarkServiceDecodeBatch64$", []string{"./internal/serve"}},
	{"BenchmarkWireAppendDecode$", []string{"./internal/wire"}},
	{"BenchmarkWireAppendDecodeTraced$", []string{"./internal/wire"}},
	{"BenchmarkWireParseResult$", []string{"./internal/wire"}},
	{"BenchmarkWireParseResultTimed$", []string{"./internal/wire"}},
	{"BenchmarkRouterPick$", []string{"./internal/cluster"}},
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+.*?\s(\d+(?:\.\d+)?) allocs/op`)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("allocgate", flag.ContinueOnError)
	bench := fs.String("bench", "", "benchmark regexp (default: the pinned contract set)")
	benchtime := fs.String("benchtime", "100x", "go test -benchtime value")
	maxAllocs := fs.Float64("max", 0, "maximum allowed allocs/op")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	type job struct {
		bench string
		pkgs  []string
	}
	var jobs []job
	if *bench != "" {
		pkgs := fs.Args()
		if len(pkgs) == 0 {
			pkgs = []string{"./..."}
		}
		jobs = append(jobs, job{*bench, pkgs})
	} else {
		for _, p := range defaultPins {
			jobs = append(jobs, job{p.bench, p.pkgs})
		}
	}

	bad := 0
	for _, j := range jobs {
		cmdArgs := append([]string{"test", "-run", "^$", "-bench", j.bench,
			"-benchtime", *benchtime, "-benchmem"}, j.pkgs...)
		cmd := exec.Command("go", cmdArgs...)
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "allocgate: go %s: %v\n%s", strings.Join(cmdArgs, " "), err, out.String())
			return 2
		}
		ran := 0
		sc := bufio.NewScanner(&out)
		for sc.Scan() {
			m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
			if m == nil {
				continue
			}
			ran++
			allocs, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				continue
			}
			if allocs > *maxAllocs {
				fmt.Printf("allocgate: FAIL %s: %g allocs/op (budget %g)\n", m[1], allocs, *maxAllocs)
				bad++
			} else {
				fmt.Printf("allocgate: ok   %s: %g allocs/op\n", m[1], allocs)
			}
		}
		if ran == 0 {
			fmt.Fprintf(os.Stderr, "allocgate: no benchmark matched %q in %s — gate would be vacuous\n",
				j.bench, strings.Join(j.pkgs, " "))
			return 2
		}
	}
	if bad > 0 {
		return 1
	}
	return 0
}
