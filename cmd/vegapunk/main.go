// Command vegapunk is the CLI front end of the decoder library:
//
//	vegapunk codes                          # list benchmark codes
//	vegapunk decouple -code "BB [[72,12,6]]" -out art.json
//	vegapunk dump -code "HP [[338,2,4]]"    # Table-3 style density plot
//	vegapunk decode -code "BB [[72,12,6]]" -p 0.002 -shots 5
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	"vegapunk/internal/core"
	"vegapunk/internal/exp"
	"vegapunk/internal/hier"
)

func run() int {
	if len(os.Args) < 2 {
		usage()
		return 2
	}
	switch os.Args[1] {
	case "codes":
		return cmdCodes()
	case "decouple":
		return cmdDecouple(os.Args[2:])
	case "dump":
		return cmdDump(os.Args[2:])
	case "decode":
		return cmdDecode(os.Args[2:])
	default:
		usage()
		return 2
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  vegapunk codes
  vegapunk decouple -code <name> [-out file.json]
  vegapunk dump     -code <name>
  vegapunk decode   -code <name> [-p 0.002] [-shots 5] [-seed 1]`)
}

func findBenchmark(name string) (exp.Benchmark, bool) {
	for _, b := range exp.Benchmarks() {
		if b.Name == name {
			return b, true
		}
	}
	return exp.Benchmark{}, false
}

func cmdCodes() int {
	ws := exp.NewWorkspace()
	fmt.Printf("%-18s %-6s %6s %4s %4s %10s\n", "name", "family", "n", "k", "d", "noise")
	for _, b := range exp.Benchmarks() {
		c, err := ws.Code(b)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		noise := "circuit"
		if b.Family == "HP" {
			noise = "phenom."
		}
		fmt.Printf("%-18s %-6s %6d %4d %4d %10s\n", b.Name, b.Family, c.N, c.K, c.D, noise)
	}
	return 0
}

func cmdDecouple(args []string) int {
	fs := flag.NewFlagSet("decouple", flag.ExitOnError)
	name := fs.String("code", "", "benchmark code name (see 'vegapunk codes')")
	out := fs.String("out", "", "write the offline artifact to this file (JSON)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	b, ok := findBenchmark(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown code %q\n", *name)
		return 2
	}
	ws := exp.NewWorkspace()
	dcp, err := ws.Decoupling(b)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	aS, bS := dcp.Sparsity()
	fmt.Printf("%s: D [%d,%d] -> K=%d blocks D_i [%d,%d] (spars %d), A [%d,%d] (spars %d), nnz=%d\n",
		b.Name, dcp.M, dcp.N, dcp.K, dcp.MD, dcp.ND, bS, dcp.M, dcp.NA, aS, dcp.NNZ())
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, cerr)
			}
		}()
		if _, err := dcp.WriteTo(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("artifact written to %s\n", *out)
	}
	return 0
}

func cmdDump(args []string) int {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	name := fs.String("code", "", "benchmark code name")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	b, ok := findBenchmark(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown code %q\n", *name)
		return 2
	}
	ws := exp.NewWorkspace()
	cfg := exp.Config{Out: os.Stdout, Quality: exp.Quick, Workers: 1, Seed: 1}
	if err := exp.DumpDecoupling(cfg, ws, b); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

func cmdDecode(args []string) int {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	name := fs.String("code", "", "benchmark code name")
	p := fs.Float64("p", 0.002, "physical error rate")
	shots := fs.Int("shots", 5, "number of sampled syndromes")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	b, ok := findBenchmark(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown code %q\n", *name)
		return 2
	}
	ws := exp.NewWorkspace()
	model, err := ws.Model(b, *p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	dcp, err := ws.Decoupling(b)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	dec := core.NewVegapunkFrom(model, dcp, hier.Config{})
	rng := rand.New(rand.NewPCG(*seed, 7))
	H := model.CheckMatrix()
	for i := 0; i < *shots; i++ {
		e := model.Sample(rng)
		s := model.Syndrome(e)
		est, stats := dec.Decode(s)
		ok := "SYNDROME-OK"
		if !H.MulVec(est).Equal(s) {
			ok = "SYNDROME-VIOLATED"
		}
		logical := "logical-ok"
		if !model.Observables(est).Equal(model.Observables(e)) {
			logical = "LOGICAL-ERROR"
		}
		fmt.Printf("shot %d: |e|=%d |ê|=%d outer=%d candidates=%d  %s %s\n",
			i, e.Weight(), est.Weight(), stats.Hier.OuterIters, stats.Hier.Candidates, ok, logical)
	}
	return 0
}

func main() { os.Exit(run()) }
