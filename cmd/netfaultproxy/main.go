// Command netfaultproxy exposes internal/netfault as a standalone TCP
// fault proxy: it listens on a local port, forwards every connection to
// -target, and injects a deterministic, seeded schedule of network
// faults — single-byte corruption, torn writes, mid-stream RSTs,
// latency spikes, bandwidth throttling and scripted link phases such as
// partitions. The CI network-chaos smoke puts it between the router and
// a replica; it is equally usable by hand to watch any wire-protocol
// peer survive a bad network.
//
//	netfaultproxy -target 127.0.0.1:8473 -seed 7 \
//	    -fault-every 4096 -w-corrupt 3 -w-tear 1 -w-reset 1 \
//	    -script pass:2s,blackhole:1s,corrupt:2s,slow:2s
//
// The proxy prints its listen address on stdout (port is picked by the
// OS), logs phase flips and a fault-counter summary on exit, and
// terminates on SIGINT/SIGTERM or after -run-for elapses.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vegapunk/internal/netfault"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("netfaultproxy", flag.ExitOnError)
	target := fs.String("target", "", "address to forward proxied connections to (required)")
	seed := fs.Uint64("seed", 1, "seed for the per-connection fault schedule PCG streams")
	faultEvery := fs.Int("fault-every", 0, "mean forwarded-byte gap between byte-offset faults per direction (0 disables)")
	wCorrupt := fs.Int("w-corrupt", 0, "weight of single-byte corruption at fault offsets")
	wTear := fs.Int("w-tear", 0, "weight of torn writes at fault offsets")
	wReset := fs.Int("w-reset", 0, "weight of mid-stream RSTs at fault offsets")
	wLatency := fs.Int("w-latency", 0, "weight of latency stalls at fault offsets")
	slowFor := fs.Duration("slow-for", 20*time.Millisecond, "stall applied by latency faults and per chunk in slow mode")
	tearPause := fs.Duration("tear-pause", 2*time.Millisecond, "pause between the halves of a torn write")
	throttle := fs.Int("throttle-bps", 0, "per-direction bandwidth cap in bytes/sec (0 = unlimited)")
	script := fs.String("script", "", "wall-clock phase schedule, e.g. pass:2s,blackhole:1s,corrupt:2s,slow:2s (mode returns to pass after the last phase)")
	runFor := fs.Duration("run-for", 0, "exit after this long (0 = run until signalled)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}
	logger := log.New(os.Stderr, "netfaultproxy ", log.LstdFlags|log.Lmicroseconds)
	if *target == "" {
		logger.Printf("-target is required")
		return 2
	}

	phases, err := parseScript(*script)
	if err != nil {
		logger.Printf("%v", err)
		return 2
	}
	plan := netfault.Plan{
		Seed:        *seed,
		FaultEvery:  *faultEvery,
		WCorrupt:    *wCorrupt,
		WTear:       *wTear,
		WReset:      *wReset,
		WLatency:    *wLatency,
		SlowFor:     *slowFor,
		TearPause:   *tearPause,
		ThrottleBps: *throttle,
		Script:      phases,
	}
	p, err := netfault.Start(*target, plan)
	if err != nil {
		logger.Printf("start: %v", err)
		return 1
	}
	// The listen address goes to stdout so scripts can capture it.
	fmt.Println(p.Addr())
	logger.Printf("proxying %s -> %s (seed %d)", p.Addr(), *target, *seed)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *runFor > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *runFor)
		defer cancel()
	}
	<-ctx.Done()

	_ = p.Close() // best-effort: exiting anyway
	conns, fwd, disc, corr, tears, resets, lats := p.Counters.Snapshot()
	logger.Printf("done: conns=%d forwarded=%d discarded=%d corrupts=%d tears=%d resets=%d latencies=%d phase_flips=%d",
		conns, fwd, disc, corr, tears, resets, lats, p.Counters.PhaseFlips.Load())
	return 0
}

// parseScript decodes a "mode:duration,mode:duration" phase schedule.
func parseScript(s string) ([]netfault.Phase, error) {
	if s == "" {
		return nil, nil
	}
	var phases []netfault.Phase
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		name, durStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("script phase %q: want mode:duration", part)
		}
		mode, ok := netfault.ParseMode(name)
		if !ok {
			return nil, fmt.Errorf("script phase %q: unknown mode (pass, slow, corrupt, blackhole)", part)
		}
		d, err := time.ParseDuration(durStr)
		if err != nil {
			return nil, fmt.Errorf("script phase %q: %v", part, err)
		}
		phases = append(phases, netfault.Phase{Mode: mode, For: d})
	}
	return phases, nil
}
